// Command octant-serve is the Octant localization daemon: it builds (or
// warm-loads) a calibrated landmark survey, then serves localizations
// over HTTP from a concurrent batch engine with an LRU result cache. The
// survey is a managed, versioned resource: a lifecycle manager reprobes
// the landmark mesh periodically or on demand, incrementally rebuilds the
// calibrations that drifted, and hot-swaps the new epoch under live
// traffic with zero dropped requests.
//
// Endpoints (see internal/serve for the full set, including the v2 API
// and the cluster coordination surface):
//
//	POST /v1/localize        {"target": "host"}            → JSON result
//	POST /v1/localize/batch  {"targets": ["h1", "h2", …]}  → NDJSON stream
//	POST /v2/localize        options/hints/provenance      → JSON result
//	POST /v2/localize/batch  per-request options           → NDJSON stream
//	POST /v1/survey/refresh  {"landmarks": ["name", …]?}   → reprobe + recalibrate
//	GET  /v1/survey/snapshot                               → versioned epoch snapshot
//	POST /v1/survey/install  (snapshot body)               → stage a pushed epoch
//	POST /v1/survey/activate                               → drain + swap to staged epoch
//	GET  /v1/survey                                        → epoch, κ, swap/refresh counters
//	GET  /v1/healthz                                       → liveness
//	GET  /v1/readyz                                        → readiness (epoch published, not draining)
//	GET  /v1/stats                                         → cache, latency, epoch
//	GET  /debug/pprof/…                                    → live profiling (only with -pprof)
//
// Usage (simulated Internet, first 8 hosts held out as targets,
// recalibrating every 15 minutes, restart-warm snapshot on disk):
//
//	octant-serve -addr :8080 -seed 1 -holdout 8 -workers 8 \
//	    -refresh 15m -survey-snapshot survey.json
//
// With -survey-snapshot, the daemon saves every published epoch to the
// given file and, when the file already exists at startup, loads it and
// starts serving without issuing a single landmark probe.
//
// On SIGINT/SIGTERM the daemon flips readiness to draining, stops
// accepting connections, and drains in-flight requests (including
// streaming batches) before exiting.
//
// Against real networks, swap the prober and supply landmarks yourself:
//
//	octant-serve -prober tcp -landmarks landmarks.csv
//
// where landmarks.csv lines are "addr,name,lat,lon" (addr is host:port
// for TCP handshake probing).
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/geodb"
	"octant/internal/lifecycle"
	"octant/internal/probe"
	"octant/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("octant-serve: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		proberKnd = flag.String("prober", "sim", "measurement source: sim|tcp")
		seed      = flag.Uint64("seed", 1, "world seed (sim prober)")
		holdout   = flag.Int("holdout", 8, "sim hosts excluded from the survey so they stay localizable targets")
		lmFile    = flag.String("landmarks", "", "landmark CSV for -prober tcp: addr,name,lat,lon per line")
		probes    = flag.Int("probes", 10, "ping probes per measurement")
		workers   = flag.Int("workers", 8, "concurrent localizations")
		cacheSize = flag.Int("cache", 1024, "LRU result-cache entries (negative disables)")
		cacheTTL  = flag.Duration("cache-ttl", 0, "result-cache entry lifetime (0 = no expiry)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-target localization timeout (0 = none)")
		maxBatch  = flag.Int("max-batch", 1024, "maximum targets per batch request")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ for live profiling")
		snapshot  = flag.String("survey-snapshot", "", "survey snapshot file: loaded at startup when present (warm start, no probing), rewritten on every published epoch")
		refresh   = flag.Duration("refresh", 0, "periodic survey recalibration interval (0 = on-demand only, via POST /v1/survey/refresh)")
		driftTol  = flag.Duration("drift-tolerance", 500*time.Microsecond, "min per-pair RTT drift for a refresh to count a landmark dirty (0 = any change counts)")
		drain     = flag.Duration("activate-drain", 2*time.Second, "in-flight drain budget before an epoch activation swaps anyway")
		grace     = flag.Duration("shutdown-grace", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
		retries   = flag.Int("probe-retries", 3, "attempts per measurement (1 disables retrying); transient probe failures back off and retry, so one lost train doesn't degrade a localization or void a survey refresh")
		measureW  = flag.Int("measure-workers", 0, "concurrent probes per localization fan-out (0 = scheduler default, 16; negative = serialized legacy loop)")
		rttTTL    = flag.Duration("rtt-cache-ttl", 0, "measurement-scheduler RTT cache lifetime (0 disables caching and in-flight dedup; entries are epoch-qualified so a survey swap never serves stale minima)")
		geodbFile = flag.String("geodb", "", "passive geolocation database JSON (geodb.LoadFile format); records feed the geodb evidence source, RTT cross-validated per target")
	)
	flag.Parse()

	prober, landmarks, err := serve.BuildProber(*proberKnd, *seed, *holdout, *lmFile)
	if err != nil {
		log.Fatal(err)
	}
	if *retries > 1 {
		// Wrapping here covers every measurement path: the initial survey
		// build, lifecycle refreshes, and the evidence pipeline.
		prober = probe.WithRetry(prober, probe.RetryOptions{Attempts: *retries})
	}

	survey, err := serve.LoadOrProbeSurvey(prober, landmarks, *probes, *snapshot)
	if err != nil {
		log.Fatal(err)
	}

	driftTolMs := float64(*driftTol) / float64(time.Millisecond)
	if driftTolMs == 0 {
		// The flag's 0 means "any change counts"; Options uses 0 as
		// "default" and negative as exact, so translate.
		driftTolMs = -1
	}
	cfg := core.Config{
		Probes:         *probes,
		MeasureWorkers: *measureW,
		RTTCacheTTL:    *rttTTL,
	}
	if *geodbFile != "" {
		provider, err := geodb.LoadFile(*geodbFile)
		if err != nil {
			log.Fatal(err)
		}
		cfg.GeoDB = geodb.NewCached(provider, 0)
		log.Printf("geodb: %d records from %s", provider.Len(), *geodbFile)
	}
	manager := lifecycle.New(prober, survey, cfg, lifecycle.Options{
		Probes:           *probes,
		Interval:         *refresh,
		SnapshotPath:     *snapshot,
		DriftToleranceMs: driftTolMs,
		OnSwap: func(e *lifecycle.Epoch, r *lifecycle.RefreshReport) {
			if r == nil {
				return // initial epoch, already logged
			}
			if r.Installed {
				log.Printf("epoch %d installed from pushed snapshot (%d landmarks)",
					e.Number(), e.Survey.N())
			} else {
				log.Printf("epoch %d published: %d/%d landmarks dirty, %d calibrations refitted (%.0f ms)",
					e.Number(), len(r.DirtyLandmarks), e.Survey.N(), r.RebuiltCalibs, r.ElapsedMs)
			}
			if r.SnapshotError != "" {
				log.Printf("snapshot autosave failed: %s", r.SnapshotError)
			}
		},
	})
	engine := batch.NewWithProvider(manager, batch.Options{
		Workers:       *workers,
		CacheSize:     *cacheSize,
		TTL:           *cacheTTL,
		TargetTimeout: *timeout,
	})
	srv := serve.New(engine, manager, serve.Options{
		MaxBatch:      *maxBatch,
		Pprof:         *pprofOn,
		ActivateDrain: *drain,
	})
	if *pprofOn {
		log.Printf("pprof enabled at /debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *refresh > 0 {
		log.Printf("recalibrating every %v", *refresh)
		go manager.Run(ctx)
	}
	go func() {
		// Fail readiness as soon as shutdown starts so fleet routers stop
		// sending new work while the listener drains.
		<-ctx.Done()
		srv.SetDraining(true)
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (%d workers, cache %d, epoch %d)",
		ln.Addr(), *workers, *cacheSize, manager.Current().Number())
	if err := serve.ServeUntilShutdown(ctx, &http.Server{Handler: srv.Handler()}, ln, *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained, exiting")
}
