// Command octant-serve is the Octant localization daemon: it builds a
// calibrated landmark survey once at startup, then serves localizations
// over HTTP from a concurrent batch engine with an LRU result cache.
//
// Endpoints:
//
//	POST /v1/localize        {"target": "host"}            → JSON result
//	POST /v1/localize/batch  {"targets": ["h1", "h2", …]}  → NDJSON stream
//	GET  /v1/healthz                                       → liveness + survey size
//	GET  /v1/stats                                         → cache hit rate, in-flight, p50/p99 latency
//	GET  /debug/pprof/…                                    → live profiling (only with -pprof)
//
// Usage (simulated Internet, first 8 hosts held out as targets):
//
//	octant-serve -addr :8080 -seed 1 -holdout 8 -workers 8
//
// Against real networks, swap the prober and supply landmarks yourself:
//
//	octant-serve -prober tcp -landmarks landmarks.csv
//
// where landmarks.csv lines are "addr,name,lat,lon" (addr is host:port
// for TCP handshake probing).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/geo"
	"octant/internal/netsim"
	"octant/internal/probe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("octant-serve: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		proberKnd = flag.String("prober", "sim", "measurement source: sim|tcp")
		seed      = flag.Uint64("seed", 1, "world seed (sim prober)")
		holdout   = flag.Int("holdout", 8, "sim hosts excluded from the survey so they stay localizable targets")
		lmFile    = flag.String("landmarks", "", "landmark CSV for -prober tcp: addr,name,lat,lon per line")
		probes    = flag.Int("probes", 10, "ping probes per measurement")
		workers   = flag.Int("workers", 8, "concurrent localizations")
		cacheSize = flag.Int("cache", 1024, "LRU result-cache entries (negative disables)")
		cacheTTL  = flag.Duration("cache-ttl", 0, "result-cache entry lifetime (0 = no expiry)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-target localization timeout (0 = none)")
		maxBatch  = flag.Int("max-batch", 1024, "maximum targets per batch request")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ for live profiling")
	)
	flag.Parse()

	prober, landmarks, err := buildProber(*proberKnd, *seed, *holdout, *lmFile)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("surveying %d landmarks (O(n²) pings + calibration)…", len(landmarks))
	start := time.Now()
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{Probes: *probes, UseHeights: true})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("survey ready in %v (κ=%.2f)", time.Since(start).Round(time.Millisecond), survey.Kappa)

	loc := core.NewLocalizer(prober, survey, core.Config{Probes: *probes})
	engine := batch.New(loc, batch.Options{
		Workers:       *workers,
		CacheSize:     *cacheSize,
		TTL:           *cacheTTL,
		TargetTimeout: *timeout,
	})
	srv := newServer(engine, survey, *maxBatch)
	srv.pprof = *pprofOn
	if *pprofOn {
		log.Printf("pprof enabled at /debug/pprof/")
	}
	log.Printf("listening on %s (%d workers, cache %d)", *addr, *workers, *cacheSize)
	log.Fatal(http.ListenAndServe(*addr, srv.handler()))
}

// buildProber assembles the measurement source and its landmark set.
func buildProber(kind string, seed uint64, holdout int, lmFile string) (probe.Prober, []core.Landmark, error) {
	switch kind {
	case "sim":
		world := netsim.NewWorld(netsim.Config{Seed: seed})
		hosts := world.HostNodes()
		if holdout < 0 || holdout > len(hosts)-3 {
			return nil, nil, fmt.Errorf("holdout %d leaves fewer than 3 landmarks", holdout)
		}
		var landmarks []core.Landmark
		for _, h := range hosts[holdout:] {
			landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
		}
		return probe.NewSimProber(world), landmarks, nil
	case "tcp":
		if lmFile == "" {
			return nil, nil, fmt.Errorf("-prober tcp requires -landmarks")
		}
		landmarks, err := loadLandmarks(lmFile)
		if err != nil {
			return nil, nil, err
		}
		return probe.NewTCPProber(), landmarks, nil
	default:
		return nil, nil, fmt.Errorf("unknown prober %q (want sim|tcp)", kind)
	}
}

// loadLandmarks parses "addr,name,lat,lon" lines ('#' comments allowed).
func loadLandmarks(path string) ([]core.Landmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []core.Landmark
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("%s:%d: want addr,name,lat,lon", path, ln+1)
		}
		lat, err1 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		lon, err2 := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: bad coordinates", path, ln+1)
		}
		out = append(out, core.Landmark{
			Addr: strings.TrimSpace(parts[0]),
			Name: strings.TrimSpace(parts[1]),
			Loc:  geo.Pt(lat, lon),
		})
	}
	if len(out) < 3 {
		return nil, fmt.Errorf("%s: need ≥ 3 landmarks, have %d", path, len(out))
	}
	return out, nil
}
