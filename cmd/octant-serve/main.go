// Command octant-serve is the Octant localization daemon: it builds (or
// warm-loads) a calibrated landmark survey, then serves localizations
// over HTTP from a concurrent batch engine with an LRU result cache. The
// survey is a managed, versioned resource: a lifecycle manager reprobes
// the landmark mesh periodically or on demand, incrementally rebuilds the
// calibrations that drifted, and hot-swaps the new epoch under live
// traffic with zero dropped requests.
//
// Endpoints:
//
//	POST /v1/localize        {"target": "host"}            → JSON result
//	POST /v1/localize/batch  {"targets": ["h1", "h2", …]}  → NDJSON stream
//	POST /v1/survey/refresh  {"landmarks": ["name", …]?}   → reprobe + recalibrate (all landmarks when body empty)
//	GET  /v1/survey                                        → epoch, κ, swap/refresh counters, last refresh report
//	GET  /v1/healthz                                       → liveness + survey size + epoch
//	GET  /v1/stats                                         → cache hit rate, in-flight, p50/p99 latency, epoch
//	GET  /debug/pprof/…                                    → live profiling (only with -pprof)
//
// Usage (simulated Internet, first 8 hosts held out as targets,
// recalibrating every 15 minutes, restart-warm snapshot on disk):
//
//	octant-serve -addr :8080 -seed 1 -holdout 8 -workers 8 \
//	    -refresh 15m -survey-snapshot survey.json
//
// With -survey-snapshot, the daemon saves every published epoch to the
// given file and, when the file already exists at startup, loads it and
// starts serving without issuing a single landmark probe.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight requests (including streaming batches) before exiting.
//
// Against real networks, swap the prober and supply landmarks yourself:
//
//	octant-serve -prober tcp -landmarks landmarks.csv
//
// where landmarks.csv lines are "addr,name,lat,lon" (addr is host:port
// for TCP handshake probing).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/geo"
	"octant/internal/lifecycle"
	"octant/internal/netsim"
	"octant/internal/probe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("octant-serve: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		proberKnd = flag.String("prober", "sim", "measurement source: sim|tcp")
		seed      = flag.Uint64("seed", 1, "world seed (sim prober)")
		holdout   = flag.Int("holdout", 8, "sim hosts excluded from the survey so they stay localizable targets")
		lmFile    = flag.String("landmarks", "", "landmark CSV for -prober tcp: addr,name,lat,lon per line")
		probes    = flag.Int("probes", 10, "ping probes per measurement")
		workers   = flag.Int("workers", 8, "concurrent localizations")
		cacheSize = flag.Int("cache", 1024, "LRU result-cache entries (negative disables)")
		cacheTTL  = flag.Duration("cache-ttl", 0, "result-cache entry lifetime (0 = no expiry)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-target localization timeout (0 = none)")
		maxBatch  = flag.Int("max-batch", 1024, "maximum targets per batch request")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ for live profiling")
		snapshot  = flag.String("survey-snapshot", "", "survey snapshot file: loaded at startup when present (warm start, no probing), rewritten on every published epoch")
		refresh   = flag.Duration("refresh", 0, "periodic survey recalibration interval (0 = on-demand only, via POST /v1/survey/refresh)")
		driftTol  = flag.Duration("drift-tolerance", 500*time.Microsecond, "min per-pair RTT drift for a refresh to count a landmark dirty (0 = any change counts)")
		grace     = flag.Duration("shutdown-grace", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	prober, landmarks, err := buildProber(*proberKnd, *seed, *holdout, *lmFile)
	if err != nil {
		log.Fatal(err)
	}

	survey, err := loadOrProbeSurvey(prober, landmarks, *probes, *snapshot)
	if err != nil {
		log.Fatal(err)
	}

	driftTolMs := float64(*driftTol) / float64(time.Millisecond)
	if driftTolMs == 0 {
		// The flag's 0 means "any change counts"; Options uses 0 as
		// "default" and negative as exact, so translate.
		driftTolMs = -1
	}
	manager := lifecycle.New(prober, survey, core.Config{Probes: *probes}, lifecycle.Options{
		Probes:           *probes,
		Interval:         *refresh,
		SnapshotPath:     *snapshot,
		DriftToleranceMs: driftTolMs,
		OnSwap: func(e *lifecycle.Epoch, r *lifecycle.RefreshReport) {
			if r == nil {
				return // initial epoch, already logged
			}
			log.Printf("epoch %d published: %d/%d landmarks dirty, %d calibrations refitted (%.0f ms)",
				e.Number(), len(r.DirtyLandmarks), e.Survey.N(), r.RebuiltCalibs, r.ElapsedMs)
			if r.SnapshotError != "" {
				log.Printf("snapshot autosave failed: %s", r.SnapshotError)
			}
		},
	})
	engine := batch.NewWithProvider(manager, batch.Options{
		Workers:       *workers,
		CacheSize:     *cacheSize,
		TTL:           *cacheTTL,
		TargetTimeout: *timeout,
	})
	srv := newServer(engine, manager, *maxBatch)
	srv.pprof = *pprofOn
	if *pprofOn {
		log.Printf("pprof enabled at /debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *refresh > 0 {
		log.Printf("recalibrating every %v", *refresh)
		go manager.Run(ctx)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (%d workers, cache %d, epoch %d)",
		ln.Addr(), *workers, *cacheSize, manager.Current().Number())
	if err := serveUntilShutdown(ctx, &http.Server{Handler: srv.handler()}, ln, *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained, exiting")
}

// serveUntilShutdown serves httpSrv on ln until ctx is cancelled, then
// drains: the listener closes immediately, in-flight requests (batch
// streams included) get up to grace to complete, and only then does the
// function return. A nil return means every accepted request finished.
func serveUntilShutdown(ctx context.Context, httpSrv *http.Server, ln net.Listener, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before any shutdown was requested
	case <-ctx.Done():
	}
	shCtx := context.Background()
	if grace > 0 {
		var cancel context.CancelFunc
		shCtx, cancel = context.WithTimeout(shCtx, grace)
		defer cancel()
	}
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadOrProbeSurvey starts warm from an existing snapshot when one is
// available, otherwise probes the full landmark mesh and seeds the
// snapshot file if a path was given (the lifecycle manager rewrites it
// on every recalibrated epoch).
func loadOrProbeSurvey(prober probe.Prober, landmarks []core.Landmark, probes int, snapshot string) (*core.Survey, error) {
	if snapshot != "" {
		switch _, err := os.Stat(snapshot); {
		case err == nil:
			survey, err := core.LoadSnapshotFile(snapshot)
			if err != nil {
				return nil, fmt.Errorf("%s exists but is unusable (%w); move it aside to reprobe", snapshot, err)
			}
			// A snapshot silently overriding the configured landmark set
			// would make the -seed/-holdout/-landmarks flags dead and the
			// calibrations wrong for the mesh the operator asked for.
			if err := landmarksMatch(survey.Landmarks, landmarks); err != nil {
				return nil, fmt.Errorf("%s does not match the configured landmark set (%w); move it aside to reprobe", snapshot, err)
			}
			// Min-of-n RTTs are only comparable at the same n: a probe
			// count mismatch would bias every later drift comparison.
			if survey.Probes != probes {
				return nil, fmt.Errorf("%s was measured with -probes %d, configuration says %d; move it aside to reprobe", snapshot, survey.Probes, probes)
			}
			log.Printf("warm start from %s: epoch %d, %d landmarks, no probing (κ=%.2f)",
				snapshot, survey.Epoch, survey.N(), survey.Kappa)
			return survey, nil
		case !errors.Is(err, fs.ErrNotExist):
			// Permission or I/O trouble is a misconfiguration to surface,
			// not a license to reprobe on every restart.
			return nil, fmt.Errorf("checking snapshot %s: %w", snapshot, err)
		}
	}
	log.Printf("surveying %d landmarks (O(n²) pings + calibration)…", len(landmarks))
	start := time.Now()
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{Probes: probes, UseHeights: true})
	if err != nil {
		return nil, err
	}
	log.Printf("survey ready in %v (κ=%.2f)", time.Since(start).Round(time.Millisecond), survey.Kappa)
	if snapshot != "" {
		if err := survey.SaveSnapshotFile(snapshot); err != nil {
			return nil, fmt.Errorf("seeding snapshot: %w", err)
		}
		log.Printf("seeded snapshot %s", snapshot)
	}
	return survey, nil
}

// landmarksMatch reports whether a snapshot's landmark set is exactly the
// configured one (same order, addresses, names, positions).
func landmarksMatch(snap, cfg []core.Landmark) error {
	if len(snap) != len(cfg) {
		return fmt.Errorf("snapshot has %d landmarks, configuration has %d", len(snap), len(cfg))
	}
	for i := range snap {
		if snap[i] != cfg[i] {
			return fmt.Errorf("landmark %d is %s (%s), configuration says %s (%s)",
				i, snap[i].Name, snap[i].Addr, cfg[i].Name, cfg[i].Addr)
		}
	}
	return nil
}

// buildProber assembles the measurement source and its landmark set.
func buildProber(kind string, seed uint64, holdout int, lmFile string) (probe.Prober, []core.Landmark, error) {
	switch kind {
	case "sim":
		world := netsim.NewWorld(netsim.Config{Seed: seed})
		hosts := world.HostNodes()
		if holdout < 0 || holdout > len(hosts)-3 {
			return nil, nil, fmt.Errorf("holdout %d leaves fewer than 3 landmarks", holdout)
		}
		var landmarks []core.Landmark
		for _, h := range hosts[holdout:] {
			landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
		}
		return probe.NewSimProber(world), landmarks, nil
	case "tcp":
		if lmFile == "" {
			return nil, nil, fmt.Errorf("-prober tcp requires -landmarks")
		}
		landmarks, err := loadLandmarks(lmFile)
		if err != nil {
			return nil, nil, err
		}
		return probe.NewTCPProber(), landmarks, nil
	default:
		return nil, nil, fmt.Errorf("unknown prober %q (want sim|tcp)", kind)
	}
}

// loadLandmarks parses "addr,name,lat,lon" lines ('#' comments allowed).
func loadLandmarks(path string) ([]core.Landmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []core.Landmark
	seenName := make(map[string]int)
	seenAddr := make(map[string]int)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("%s:%d: want addr,name,lat,lon", path, ln+1)
		}
		lat, err1 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		lon, err2 := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: bad coordinates", path, ln+1)
		}
		lm := core.Landmark{
			Addr: strings.TrimSpace(parts[0]),
			Name: strings.TrimSpace(parts[1]),
			Loc:  geo.Pt(lat, lon),
		}
		// Names address landmarks in the admin API (scoped refresh) and
		// addresses identify probe endpoints; ambiguity in either would
		// silently misdirect recalibration.
		if prev, ok := seenName[lm.Name]; ok {
			return nil, fmt.Errorf("%s:%d: duplicate landmark name %q (first at line %d)", path, ln+1, lm.Name, prev)
		}
		if prev, ok := seenAddr[lm.Addr]; ok {
			return nil, fmt.Errorf("%s:%d: duplicate landmark address %q (first at line %d)", path, ln+1, lm.Addr, prev)
		}
		seenName[lm.Name], seenAddr[lm.Addr] = ln+1, ln+1
		out = append(out, lm)
	}
	if len(out) < 3 {
		return nil, fmt.Errorf("%s: need ≥ 3 landmarks, have %d", path, len(out))
	}
	return out, nil
}
