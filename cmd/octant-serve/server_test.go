package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/lifecycle"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// testServer builds a serve stack over the simulated world with the first
// 32 hosts held out as targets, mirroring what main() wires up.
type testStack struct {
	srv     *server
	world   *netsim.World
	targets []string
	seq     map[string]*core.Result // sequential ground truth per target
}

var (
	stackOnce sync.Once
	stack     testStack
	stackErr  error
)

// buildStack wires a full serve stack (prober → survey → lifecycle →
// engine → server) over a fresh simulated world.
func buildStack(seed uint64, holdout int) (testStack, error) {
	prober, landmarks, err := buildProber("sim", seed, holdout, "")
	if err != nil {
		return testStack{}, err
	}
	world := prober.(*probe.SimProber).World
	targets := make([]string, 0, holdout)
	for _, h := range world.HostNodes()[:holdout] {
		targets = append(targets, h.Name)
	}
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{UseHeights: true})
	if err != nil {
		return testStack{}, err
	}
	manager := lifecycle.New(prober, survey, core.Config{}, lifecycle.Options{})
	seq := make(map[string]*core.Result, len(targets))
	loc := manager.CurrentLocalizer()
	for _, tgt := range targets {
		res, err := loc.Localize(tgt)
		if err != nil {
			return testStack{}, err
		}
		seq[tgt] = res
	}
	engine := batch.NewWithProvider(manager, batch.Options{Workers: 8})
	return testStack{srv: newServer(engine, manager, 256), world: world, targets: targets, seq: seq}, nil
}

func sharedStack(t *testing.T) testStack {
	t.Helper()
	stackOnce.Do(func() { stack, stackErr = buildStack(3, 32) })
	if stackErr != nil {
		t.Fatal(stackErr)
	}
	return stack
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestBatchEndpointEndToEnd drives POST /v1/localize/batch with all 32
// held-out targets and checks every NDJSON line against the sequential
// Localize ground truth.
func TestBatchEndpointEndToEnd(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.handler()

	rec := postJSON(t, h, "/v1/localize/batch", map[string]any{"targets": s.targets})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	seen := make(map[string]bool)
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var tr targetResult
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if tr.Error != "" {
			t.Fatalf("%s: %s", tr.Target, tr.Error)
		}
		want, ok := s.seq[tr.Target]
		if !ok {
			t.Fatalf("unrequested target %q in response", tr.Target)
		}
		if seen[tr.Target] {
			t.Fatalf("target %q answered twice", tr.Target)
		}
		seen[tr.Target] = true
		if tr.Lat == nil || tr.Lon == nil {
			t.Fatalf("%s: missing point", tr.Target)
		}
		if *tr.Lat != want.Point.Lat || *tr.Lon != want.Point.Lon {
			t.Errorf("%s: served (%v,%v) != sequential %v", tr.Target, *tr.Lat, *tr.Lon, want.Point)
		}
		if tr.AreaKm2 != want.AreaKm2 {
			t.Errorf("%s: area %v != %v", tr.Target, tr.AreaKm2, want.AreaKm2)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(s.targets) {
		t.Errorf("answered %d of %d targets", len(seen), len(s.targets))
	}
}

func TestSingleLocalizeAndCacheFlag(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.handler()
	tgt := s.targets[0]

	var trs [2]targetResult
	for i := range trs {
		rec := postJSON(t, h, "/v1/localize", map[string]string{"target": tgt})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &trs[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := s.seq[tgt]
	for i, tr := range trs {
		if tr.Lat == nil || *tr.Lat != want.Point.Lat {
			t.Errorf("call %d: wrong point", i)
		}
	}
	// The batch endpoint already localized every target, so this is a hit
	// both times.
	if !trs[0].Cached || !trs[1].Cached {
		t.Errorf("expected cached repeats, got %v / %v", trs[0].Cached, trs[1].Cached)
	}
}

func TestValidationErrors(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.handler()

	if rec := postJSON(t, h, "/v1/localize", map[string]string{}); rec.Code != http.StatusBadRequest {
		t.Errorf("missing target: status %d", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/localize", map[string]string{"target": "no.such.host"}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown target: status %d", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/localize/batch", map[string]any{"targets": []string{}}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", rec.Code)
	}
	big := make([]string, 257)
	for i := range big {
		big[i] = "x"
	}
	if rec := postJSON(t, h, "/v1/localize/batch", map[string]any{"targets": big}); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/localize", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET localize: status %d", rec.Code)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var hz struct {
		Status    string `json:"status"`
		Landmarks int    `json:"landmarks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Landmarks != s.srv.manager.Current().Survey.N() {
		t.Errorf("healthz = %+v", hz)
	}

	// A multi-target batch through the HTTP surface is one fused group;
	// /v1/stats must report it.
	if rec := postJSON(t, h, "/v2/localize/batch", map[string]any{"targets": s.targets[:2]}); rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var st batch.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 {
		t.Error("stats report zero requests after traffic")
	}
	if st.FusedGroups == 0 || st.FusedTargets < 2 {
		t.Errorf("stats report no fused traffic after a batch (%d groups, %d targets)",
			st.FusedGroups, st.FusedTargets)
	}
	if st.Workers != 8 {
		t.Errorf("workers = %d, want 8", st.Workers)
	}
	if st.LandMasks.Misses == 0 {
		t.Error("stats report no land-mask masters built after localizations")
	}
	if st.LandMasks.Hits == 0 {
		t.Error("stats report no land-mask reuse across localizations")
	}
}

// TestPprofGating verifies /debug/pprof/ is served only behind the -pprof
// flag.
func TestPprofGating(t *testing.T) {
	s := sharedStack(t)

	rec := httptest.NewRecorder()
	s.srv.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", rec.Code)
	}

	enabled := *s.srv
	enabled.pprof = true
	rec = httptest.NewRecorder()
	enabled.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: status %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	enabled.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d, want 200", rec.Code)
	}
}

func TestLoadLandmarksParsing(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/lm.csv"
	csv := strings.Join([]string{
		"# comment",
		"host-a:80, Site A, 42.44, -76.50",
		"host-b:80, Site B, 40.71, -74.01",
		"host-c:80, Site C, 37.77, -122.42",
		"",
	}, "\n")
	if err := writeFile(path, csv); err != nil {
		t.Fatal(err)
	}
	lms, err := loadLandmarks(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) != 3 || lms[0].Addr != "host-a:80" || lms[2].Loc.Lon != -122.42 {
		t.Errorf("parsed %+v", lms)
	}
	if err := writeFile(path, "one,two,three\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLandmarks(path); err == nil {
		t.Error("malformed line should error")
	}
	dupName := "a:80, Site X, 1, 2\nb:80, Site X, 3, 4\nc:80, Site Z, 5, 6\n"
	if err := writeFile(path, dupName); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLandmarks(path); err == nil {
		t.Error("duplicate landmark name should error (names address scoped refreshes)")
	}
	dupAddr := "a:80, Site X, 1, 2\na:80, Site Y, 3, 4\nc:80, Site Z, 5, 6\n"
	if err := writeFile(path, dupAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLandmarks(path); err == nil {
		t.Error("duplicate landmark address should error")
	}
}

// writeFile is a tiny helper so the parsing test reads naturally.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestSurveyRefreshEndpoints drives the admin surface on its own stack
// (epoch swaps would invalidate the shared stack's ground truth): a
// refresh with no drift publishes nothing, a refresh after injected RTT
// drift hot-swaps epoch 1 under the same engine, and /v1/survey +
// /v1/stats report the progression.
func TestSurveyRefreshEndpoints(t *testing.T) {
	s, err := buildStack(11, 40)
	if err != nil {
		t.Fatal(err)
	}
	h := s.srv.handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/survey", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("survey status %d: %s", rec.Code, rec.Body)
	}
	var sv lifecycle.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Epoch != 0 || sv.Landmarks == 0 {
		t.Errorf("initial survey view = %+v", sv)
	}

	// Stable world: refresh must not publish.
	rec = postJSON(t, h, "/v1/survey/refresh", map[string]any{})
	if rec.Code != http.StatusOK {
		t.Fatalf("refresh status %d: %s", rec.Code, rec.Body)
	}
	var rep lifecycle.RefreshReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Swapped || rep.Epoch != 0 {
		t.Errorf("no-drift refresh = %+v", rep)
	}

	// Drift one landmark pair beyond tolerance and refresh again.
	survey := s.srv.manager.Current().Survey
	a, _ := s.world.HostByName(survey.Landmarks[0].Addr)
	b, _ := s.world.HostByName(survey.Landmarks[1].Addr)
	s.world.SetPairDriftMs(a.ID, b.ID, 25)
	rec = postJSON(t, h, "/v1/survey/refresh", map[string]any{})
	if rec.Code != http.StatusOK {
		t.Fatalf("refresh status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.Epoch != 1 || len(rep.DirtyLandmarks) != 2 {
		t.Errorf("drift refresh = %+v", rep)
	}

	// Unknown landmark names in a scoped refresh are rejected.
	if rec := postJSON(t, h, "/v1/survey/refresh", map[string]any{"landmarks": []string{"no-such"}}); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown landmark: status %d", rec.Code)
	}

	// The engine serves the new epoch.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st batch.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Errorf("engine epoch = %d, want 1", st.Epoch)
	}
}

// TestWarmStartSkipsProbing is the daemon-level acceptance check for
// -survey-snapshot: with a snapshot on disk, startup issues zero
// landmark probes and serves the persisted epoch.
func TestWarmStartSkipsProbing(t *testing.T) {
	prober, landmarks, err := buildProber("sim", 13, 45, "")
	if err != nil {
		t.Fatal(err)
	}
	world := prober.(*probe.SimProber).World
	path := t.TempDir() + "/survey.json"

	// Cold path: no file yet → probes the mesh and seeds the snapshot.
	cold, err := loadOrProbeSurvey(prober, landmarks, 10, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cold start did not seed the snapshot: %v", err)
	}

	before := world.PingCalls()
	warm, err := loadOrProbeSurvey(prober, landmarks, 10, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := world.PingCalls() - before; got != 0 {
		t.Errorf("warm start issued %d landmark probes, want 0", got)
	}
	if warm.N() != cold.N() || warm.Epoch != cold.Epoch || warm.Kappa != cold.Kappa {
		t.Errorf("warm survey differs: n %d/%d κ %v/%v", warm.N(), cold.N(), warm.Kappa, cold.Kappa)
	}
	// A corrupt snapshot must fail loudly, not silently reprobe.
	if err := writeFile(path, "{"); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrProbeSurvey(prober, landmarks, 10, path); err == nil {
		t.Error("corrupt snapshot silently ignored")
	}
	// So must a snapshot for a different landmark set: the flags, not
	// the stale file, define the mesh.
	if err := cold.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrProbeSurvey(prober, landmarks[1:], 10, path); err == nil {
		t.Error("snapshot with mismatched landmark set silently served")
	}
	renamed := append([]core.Landmark(nil), landmarks...)
	renamed[0].Name = "someone-else"
	if _, err := loadOrProbeSurvey(prober, renamed, 10, path); err == nil {
		t.Error("snapshot with renamed landmark silently served")
	}
	// …and so must a probe-count mismatch: min-of-n baselines are only
	// drift-comparable at the same n.
	if _, err := loadOrProbeSurvey(prober, landmarks, 30, path); err == nil {
		t.Error("snapshot with different probe count silently served")
	}
}

// delayProber slows Ping so a localization is reliably in flight when
// shutdown starts.
type delayProber struct {
	probe.Prober
	d time.Duration
}

func (p delayProber) Ping(src, dst string, n int) ([]float64, error) {
	time.Sleep(p.d)
	return p.Prober.Ping(src, dst, n)
}

// TestGracefulShutdownDrains starts a real listener, gets a localization
// in flight, triggers shutdown, and requires the in-flight request to
// complete successfully while new connections are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	prober, landmarks, err := buildProber("sim", 5, 45, "")
	if err != nil {
		t.Fatal(err)
	}
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	slow := delayProber{Prober: prober, d: 4 * time.Millisecond}
	manager := lifecycle.New(slow, survey, core.Config{}, lifecycle.Options{})
	engine := batch.NewWithProvider(manager, batch.Options{Workers: 2})
	srv := newServer(engine, manager, 16)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serveUntilShutdown(ctx, &http.Server{Handler: srv.handler()}, ln, 10*time.Second)
	}()

	target := prober.(*probe.SimProber).World.HostNodes()[0].Name
	url := fmt.Sprintf("http://%s/v1/localize", ln.Addr())
	resc := make(chan error, 1)
	go func() {
		resp, err := http.Post(url, "application/json",
			strings.NewReader(fmt.Sprintf(`{"target": %q}`, target)))
		if err != nil {
			resc <- err
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			resc <- fmt.Errorf("in-flight request: status %d: %s", resp.StatusCode, body)
			return
		}
		resc <- nil
	}()

	// Let the request get measuring (≥ 3 landmarks × 4 ms each), then
	// pull the plug.
	time.Sleep(20 * time.Millisecond)
	cancel()

	if err := <-resc; err != nil {
		t.Errorf("in-flight request not drained: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serveUntilShutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilShutdown did not return")
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", ln.Addr())); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
