package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/probe"
)

// testServer builds a serve stack over the simulated world with the first
// 32 hosts held out as targets, mirroring what main() wires up.
type testStack struct {
	srv     *server
	targets []string
	seq     map[string]*core.Result // sequential ground truth per target
}

var (
	stackOnce sync.Once
	stack     testStack
	stackErr  error
)

func sharedStack(t *testing.T) testStack {
	t.Helper()
	stackOnce.Do(func() {
		prober, landmarks, err := buildProber("sim", 3, 32, "")
		if err != nil {
			stackErr = err
			return
		}
		world := prober.(*probe.SimProber).World
		targets := make([]string, 0, 32)
		for _, h := range world.HostNodes()[:32] {
			targets = append(targets, h.Name)
		}
		survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{UseHeights: true})
		if err != nil {
			stackErr = err
			return
		}
		loc := core.NewLocalizer(prober, survey, core.Config{})
		seq := make(map[string]*core.Result, len(targets))
		for _, tgt := range targets {
			res, err := loc.Localize(tgt)
			if err != nil {
				stackErr = err
				return
			}
			seq[tgt] = res
		}
		engine := batch.New(loc, batch.Options{Workers: 8})
		stack = testStack{srv: newServer(engine, survey, 256), targets: targets, seq: seq}
	})
	if stackErr != nil {
		t.Fatal(stackErr)
	}
	return stack
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestBatchEndpointEndToEnd drives POST /v1/localize/batch with all 32
// held-out targets and checks every NDJSON line against the sequential
// Localize ground truth.
func TestBatchEndpointEndToEnd(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.handler()

	rec := postJSON(t, h, "/v1/localize/batch", map[string]any{"targets": s.targets})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	seen := make(map[string]bool)
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var tr targetResult
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if tr.Error != "" {
			t.Fatalf("%s: %s", tr.Target, tr.Error)
		}
		want, ok := s.seq[tr.Target]
		if !ok {
			t.Fatalf("unrequested target %q in response", tr.Target)
		}
		if seen[tr.Target] {
			t.Fatalf("target %q answered twice", tr.Target)
		}
		seen[tr.Target] = true
		if tr.Lat == nil || tr.Lon == nil {
			t.Fatalf("%s: missing point", tr.Target)
		}
		if *tr.Lat != want.Point.Lat || *tr.Lon != want.Point.Lon {
			t.Errorf("%s: served (%v,%v) != sequential %v", tr.Target, *tr.Lat, *tr.Lon, want.Point)
		}
		if tr.AreaKm2 != want.AreaKm2 {
			t.Errorf("%s: area %v != %v", tr.Target, tr.AreaKm2, want.AreaKm2)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(s.targets) {
		t.Errorf("answered %d of %d targets", len(seen), len(s.targets))
	}
}

func TestSingleLocalizeAndCacheFlag(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.handler()
	tgt := s.targets[0]

	var trs [2]targetResult
	for i := range trs {
		rec := postJSON(t, h, "/v1/localize", map[string]string{"target": tgt})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &trs[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := s.seq[tgt]
	for i, tr := range trs {
		if tr.Lat == nil || *tr.Lat != want.Point.Lat {
			t.Errorf("call %d: wrong point", i)
		}
	}
	// The batch endpoint already localized every target, so this is a hit
	// both times.
	if !trs[0].Cached || !trs[1].Cached {
		t.Errorf("expected cached repeats, got %v / %v", trs[0].Cached, trs[1].Cached)
	}
}

func TestValidationErrors(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.handler()

	if rec := postJSON(t, h, "/v1/localize", map[string]string{}); rec.Code != http.StatusBadRequest {
		t.Errorf("missing target: status %d", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/localize", map[string]string{"target": "no.such.host"}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown target: status %d", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/localize/batch", map[string]any{"targets": []string{}}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", rec.Code)
	}
	big := make([]string, 257)
	for i := range big {
		big[i] = "x"
	}
	if rec := postJSON(t, h, "/v1/localize/batch", map[string]any{"targets": big}); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/localize", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET localize: status %d", rec.Code)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var hz struct {
		Status    string `json:"status"`
		Landmarks int    `json:"landmarks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Landmarks != s.srv.survey.N() {
		t.Errorf("healthz = %+v", hz)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var st batch.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 {
		t.Error("stats report zero requests after traffic")
	}
	if st.Workers != 8 {
		t.Errorf("workers = %d, want 8", st.Workers)
	}
	if st.LandMasks.Misses == 0 {
		t.Error("stats report no land-mask masters built after localizations")
	}
	if st.LandMasks.Hits == 0 {
		t.Error("stats report no land-mask reuse across localizations")
	}
}

// TestPprofGating verifies /debug/pprof/ is served only behind the -pprof
// flag.
func TestPprofGating(t *testing.T) {
	s := sharedStack(t)

	rec := httptest.NewRecorder()
	s.srv.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", rec.Code)
	}

	enabled := *s.srv
	enabled.pprof = true
	rec = httptest.NewRecorder()
	enabled.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: status %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	enabled.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d, want 200", rec.Code)
	}
}

func TestLoadLandmarksParsing(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/lm.csv"
	csv := strings.Join([]string{
		"# comment",
		"host-a:80, Site A, 42.44, -76.50",
		"host-b:80, Site B, 40.71, -74.01",
		"host-c:80, Site C, 37.77, -122.42",
		"",
	}, "\n")
	if err := writeFile(path, csv); err != nil {
		t.Fatal(err)
	}
	lms, err := loadLandmarks(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) != 3 || lms[0].Addr != "host-a:80" || lms[2].Loc.Lon != -122.42 {
		t.Errorf("parsed %+v", lms)
	}
	if err := writeFile(path, "one,two,three\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLandmarks(path); err == nil {
		t.Error("malformed line should error")
	}
}

// writeFile is a tiny helper so the parsing test reads naturally.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
