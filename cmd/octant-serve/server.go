package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"time"

	"octant/internal/batch"
	"octant/internal/lifecycle"
)

// server is the HTTP surface over a batch engine and its survey lifecycle
// manager. All state it touches is either immutable (epoch snapshots) or
// internally synchronized (the engine, the manager), so the handlers need
// no locking of their own.
type server struct {
	engine  *batch.Engine
	manager *lifecycle.Manager
	started time.Time
	// maxBatch bounds targets per batch request (0 = default 1024).
	maxBatch int
	// pprof mounts the net/http/pprof handlers under /debug/pprof/ so
	// production hot paths can be profiled live.
	pprof bool
}

func newServer(engine *batch.Engine, manager *lifecycle.Manager, maxBatch int) *server {
	if maxBatch <= 0 {
		maxBatch = 1024
	}
	return &server{engine: engine, manager: manager, started: time.Now(), maxBatch: maxBatch}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/localize", s.handleLocalize)
	mux.HandleFunc("/v1/localize/batch", s.handleBatch)
	mux.HandleFunc("/v1/survey", s.handleSurvey)
	mux.HandleFunc("/v1/survey/refresh", s.handleRefresh)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	if s.pprof {
		// Explicit registration: the daemon serves its own mux, so the
		// side-effect registrations on http.DefaultServeMux from importing
		// net/http/pprof never reach clients unless mounted here.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// targetResult is the wire form of one localization outcome. Latitude and
// longitude are pointers because an empty estimated region has no point
// (NaN is not representable in JSON).
type targetResult struct {
	Target      string   `json:"target"`
	Lat         *float64 `json:"lat,omitempty"`
	Lon         *float64 `json:"lon,omitempty"`
	AreaKm2     float64  `json:"area_km2,omitempty"`
	HeightMs    float64  `json:"height_ms,omitempty"`
	Constraints int      `json:"constraints,omitempty"`
	EmptyRegion bool     `json:"empty_region,omitempty"`
	Cached      bool     `json:"cached,omitempty"`
	ElapsedMs   float64  `json:"elapsed_ms,omitempty"`
	Error       string   `json:"error,omitempty"`
}

func toTargetResult(item batch.Item) targetResult {
	tr := targetResult{Target: item.Target}
	if item.Err != nil {
		tr.Error = item.Err.Error()
		return tr
	}
	res := item.Result
	tr.AreaKm2 = res.AreaKm2
	tr.HeightMs = res.TargetHeightMs
	tr.Constraints = len(res.Constraints)
	tr.Cached = item.Cached
	tr.ElapsedMs = float64(item.Elapsed) / float64(time.Millisecond)
	if math.IsNaN(res.Point.Lat) {
		tr.EmptyRegion = true
	} else {
		lat, lon := res.Point.Lat, res.Point.Lon
		tr.Lat, tr.Lon = &lat, &lon
	}
	return tr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleLocalize serves POST /v1/localize: {"target": "..."} → one result.
func (s *server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Target string `json:"target"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, "missing target")
		return
	}
	// r.Context() cancels on client disconnect, aborting the measurement
	// at its next probe.
	item := s.engine.LocalizeItem(r.Context(), req.Target)
	if item.Err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", item.Err)
		return
	}
	writeJSON(w, http.StatusOK, toTargetResult(item))
}

// handleBatch serves POST /v1/localize/batch: {"targets": [...]} → one
// NDJSON line per target, streamed in completion order as the worker pool
// drains the batch.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Targets []string `json:"targets"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Targets) == 0 {
		writeError(w, http.StatusBadRequest, "missing targets")
		return
	}
	if len(req.Targets) > s.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"%d targets exceeds the %d per-request limit", len(req.Targets), s.maxBatch)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	items := s.engine.Run(r.Context(), req.Targets)
	for item := range items {
		if err := enc.Encode(toTargetResult(item)); err != nil {
			// Client went away. The engine still owns worker goroutines
			// blocked on this channel; drain it so they can exit (fast,
			// because r.Context() is already cancelled).
			for range items {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSurvey serves GET /v1/survey: the lifecycle view — current
// epoch, calibration parameters, swap/refresh counters, and the last
// refresh report.
func (s *server) handleSurvey(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.manager.Stats())
}

// handleRefresh serves POST /v1/survey/refresh: reprobe the landmark mesh
// and hot-swap a recalibrated epoch if anything drifted. An optional body
// {"landmarks": ["name", …]} scopes the reprobe to pairs touching the
// named landmarks (on-demand recalibration of suspects at O(k·n) probes);
// an empty or absent body refreshes every pair. Responds with the refresh
// report; traffic is served uninterrupted throughout.
func (s *server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Landmarks []string `json:"landmarks"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	var scope []int
	if len(req.Landmarks) > 0 {
		survey := s.manager.Current().Survey
		// A name maps to every landmark carrying it: landmark sets are
		// validated for uniqueness at load, but if duplicates slip in
		// (e.g. an older snapshot) a scoped refresh must cover them all
		// rather than silently reprobing one.
		byName := make(map[string][]int, survey.N())
		for i, lm := range survey.Landmarks {
			byName[lm.Name] = append(byName[lm.Name], i)
		}
		for _, name := range req.Landmarks {
			idx, ok := byName[name]
			if !ok {
				writeError(w, http.StatusBadRequest, "unknown landmark %q", name)
				return
			}
			scope = append(scope, idx...)
		}
	}
	report, err := s.manager.Refresh(r.Context(), scope)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// handleHealthz serves GET /v1/healthz.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	e := s.manager.Current()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"landmarks": e.Survey.N(),
		"epoch":     e.Number(),
		"uptime_s":  time.Since(s.started).Seconds(),
	})
}

// handleStats serves GET /v1/stats: the engine's counters, cache hit
// rate, in-flight count, and latency quantiles.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}
