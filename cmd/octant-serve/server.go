package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/geo"
	"octant/internal/lifecycle"
)

// server is the HTTP surface over a batch engine and its survey lifecycle
// manager. All state it touches is either immutable (epoch snapshots) or
// internally synchronized (the engine, the manager), so the handlers need
// no locking of their own.
type server struct {
	engine  *batch.Engine
	manager *lifecycle.Manager
	started time.Time
	// maxBatch bounds targets per batch request (0 = default 1024).
	maxBatch int
	// pprof mounts the net/http/pprof handlers under /debug/pprof/ so
	// production hot paths can be profiled live.
	pprof bool
}

func newServer(engine *batch.Engine, manager *lifecycle.Manager, maxBatch int) *server {
	if maxBatch <= 0 {
		maxBatch = 1024
	}
	return &server{engine: engine, manager: manager, started: time.Now(), maxBatch: maxBatch}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/localize", s.handleLocalize)
	mux.HandleFunc("/v1/localize/batch", s.handleBatch)
	mux.HandleFunc("/v2/localize", s.handleLocalizeV2)
	mux.HandleFunc("/v2/localize/batch", s.handleBatchV2)
	mux.HandleFunc("/v1/survey", s.handleSurvey)
	mux.HandleFunc("/v1/survey/refresh", s.handleRefresh)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	if s.pprof {
		// Explicit registration: the daemon serves its own mux, so the
		// side-effect registrations on http.DefaultServeMux from importing
		// net/http/pprof never reach clients unless mounted here.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// targetResult is the wire form of one localization outcome. Latitude and
// longitude are pointers because an empty estimated region has no point
// (NaN is not representable in JSON).
type targetResult struct {
	Target      string   `json:"target"`
	Lat         *float64 `json:"lat,omitempty"`
	Lon         *float64 `json:"lon,omitempty"`
	AreaKm2     float64  `json:"area_km2,omitempty"`
	HeightMs    float64  `json:"height_ms,omitempty"`
	Constraints int      `json:"constraints,omitempty"`
	EmptyRegion bool     `json:"empty_region,omitempty"`
	Cached      bool     `json:"cached,omitempty"`
	ElapsedMs   float64  `json:"elapsed_ms,omitempty"`
	Error       string   `json:"error,omitempty"`
}

func toTargetResult(item batch.Item) targetResult {
	tr := targetResult{Target: item.Target}
	if item.Err != nil {
		tr.Error = item.Err.Error()
		return tr
	}
	res := item.Result
	tr.AreaKm2 = res.AreaKm2
	tr.HeightMs = res.TargetHeightMs
	tr.Constraints = len(res.Constraints)
	tr.Cached = item.Cached
	tr.ElapsedMs = float64(item.Elapsed) / float64(time.Millisecond)
	if math.IsNaN(res.Point.Lat) {
		tr.EmptyRegion = true
	} else {
		lat, lon := res.Point.Lat, res.Point.Lon
		tr.Lat, tr.Lon = &lat, &lon
	}
	return tr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// --- v2 wire format ---
//
// The v2 surface maps request bodies 1:1 onto the core.LocalizeOption
// set: every knob a library caller can turn, a wire caller can too.

// wireHint is one exogenous positive prior (core.Hint) on the wire.
type wireHint struct {
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	RadiusKm float64 `json:"radius_km,omitempty"`
	Weight   float64 `json:"weight,omitempty"`
	Label    string  `json:"label,omitempty"`
}

// wireOptions is the JSON form of a request's options. Zero values mean
// "server default" throughout, so an empty object is exactly a v1
// request.
type wireOptions struct {
	// Disable lists evidence sources to skip: "latency", "router",
	// "hint", "geography".
	Disable []string `json:"disable,omitempty"`
	// Weights scales each named source's constraint weights (> 0).
	Weights map[string]float64 `json:"weights,omitempty"`
	// MinAreaKm2 overrides the §2.4 region size threshold.
	MinAreaKm2 float64 `json:"min_area_km2,omitempty"`
	// FineCellKm overrides the solver's fine-pass resolution.
	FineCellKm float64 `json:"fine_cell_km,omitempty"`
	// NegHeightPercentile overrides the negative-constraint height
	// percentile.
	NegHeightPercentile float64 `json:"neg_height_percentile,omitempty"`
	// Explain attaches per-source provenance to the response.
	Explain bool `json:"explain,omitempty"`
	// Hints are extra positive priors for the hint source.
	Hints []wireHint `json:"hints,omitempty"`
}

// knownSources guards source names on the wire: a typo must 400, not
// silently no-op.
var knownSources = map[string]bool{
	core.SourceLatency:   true,
	core.SourceRouter:    true,
	core.SourceHint:      true,
	core.SourceGeography: true,
}

// toOptions converts the wire options (nil = none) into request options.
func (wo *wireOptions) toOptions() ([]core.LocalizeOption, error) {
	if wo == nil {
		return nil, nil
	}
	var opts []core.LocalizeOption
	for _, name := range wo.Disable {
		if !knownSources[name] {
			return nil, fmt.Errorf("unknown source %q in disable (want latency|router|hint|geography)", name)
		}
		opts = append(opts, core.WithoutSource(name))
	}
	for name, scale := range wo.Weights {
		if !knownSources[name] {
			return nil, fmt.Errorf("unknown source %q in weights (want latency|router|hint|geography)", name)
		}
		if scale <= 0 {
			return nil, fmt.Errorf("weight scale for %q must be > 0, got %v", name, scale)
		}
		opts = append(opts, core.WithSourceWeight(name, scale))
	}
	if wo.MinAreaKm2 < 0 || wo.FineCellKm < 0 {
		return nil, fmt.Errorf("min_area_km2 and fine_cell_km must be ≥ 0")
	}
	if wo.MinAreaKm2 > 0 {
		opts = append(opts, core.WithMinAreaKm2(wo.MinAreaKm2))
	}
	if wo.FineCellKm > 0 {
		opts = append(opts, core.WithFineCellKm(wo.FineCellKm))
	}
	if wo.NegHeightPercentile != 0 {
		if wo.NegHeightPercentile < 0 || wo.NegHeightPercentile > 100 {
			return nil, fmt.Errorf("neg_height_percentile must be in (0, 100], got %v", wo.NegHeightPercentile)
		}
		opts = append(opts, core.WithNegHeightPercentile(wo.NegHeightPercentile))
	}
	if wo.Explain {
		opts = append(opts, core.WithExplain())
	}
	for i, h := range wo.Hints {
		loc := geo.Pt(h.Lat, h.Lon)
		if !loc.Valid() {
			return nil, fmt.Errorf("hint %d: invalid coordinates (%v, %v)", i, h.Lat, h.Lon)
		}
		if h.RadiusKm < 0 || h.Weight < 0 {
			return nil, fmt.Errorf("hint %d: radius_km and weight must be ≥ 0", i)
		}
		opts = append(opts, core.WithHint(loc, h.RadiusKm, h.Weight, h.Label))
	}
	return opts, nil
}

// targetResultV2 extends the v1 wire result with the serving epoch and,
// when the request asked to explain itself, the evidence provenance.
type targetResultV2 struct {
	targetResult
	Epoch      uint64           `json:"epoch"`
	Provenance *core.Provenance `json:"provenance,omitempty"`
}

func toTargetResultV2(item batch.Item) targetResultV2 {
	tr := targetResultV2{targetResult: toTargetResult(item), Epoch: item.Epoch}
	if item.Err == nil && item.Result.Provenance != nil {
		tr.Provenance = item.Result.Provenance
	}
	return tr
}

// handleLocalize serves POST /v1/localize: {"target": "..."} → one
// result. It is a thin adapter over the same request path as /v2 with no
// options, kept for wire compatibility.
func (s *server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Target string `json:"target"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, "missing target")
		return
	}
	// r.Context() cancels on client disconnect, aborting the measurement
	// at its next probe.
	item := s.engine.LocalizeItem(r.Context(), req.Target)
	if item.Err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", item.Err)
		return
	}
	writeJSON(w, http.StatusOK, toTargetResult(item))
}

// handleLocalizeV2 serves POST /v2/localize:
// {"target": "...", "options": {...}} → one result with epoch and
// optional provenance. Options map 1:1 onto core.LocalizeOption.
func (s *server) handleLocalizeV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Target  string       `json:"target"`
		Options *wireOptions `json:"options"`
	}
	// DisallowUnknownFields: /v2 is a new surface, so a misspelled
	// option key ("weight" for "weights") must 400 rather than silently
	// run — and cache — the request under server defaults.
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, "missing target")
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad options: %v", err)
		return
	}
	item := s.engine.LocalizeItem(r.Context(), req.Target, opts...)
	if item.Err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", item.Err)
		return
	}
	writeJSON(w, http.StatusOK, toTargetResultV2(item))
}

// handleBatch serves POST /v1/localize/batch: {"targets": [...]} → one
// NDJSON line per target, streamed in completion order as the worker pool
// drains the batch. A thin adapter over the /v2 stream with no options.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Targets []string `json:"targets"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.streamBatch(w, r, req.Targets, nil, func(item batch.Item) any {
		return toTargetResult(item)
	})
}

// handleBatchV2 serves POST /v2/localize/batch:
// {"targets": [...], "options": {...}} → NDJSON stream of v2 results.
// The options apply to every target of the batch.
func (s *server) handleBatchV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Targets []string     `json:"targets"`
		Options *wireOptions `json:"options"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad options: %v", err)
		return
	}
	s.streamBatch(w, r, req.Targets, opts, func(item batch.Item) any {
		return toTargetResultV2(item)
	})
}

// streamBatch validates the target list and streams one encoded line per
// completed target — the shared engine of both batch endpoints.
func (s *server) streamBatch(w http.ResponseWriter, r *http.Request, targets []string, opts []core.LocalizeOption, encode func(batch.Item) any) {
	if len(targets) == 0 {
		writeError(w, http.StatusBadRequest, "missing targets")
		return
	}
	if len(targets) > s.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"%d targets exceeds the %d per-request limit", len(targets), s.maxBatch)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	items := s.engine.Run(r.Context(), targets, opts...)
	for item := range items {
		if err := enc.Encode(encode(item)); err != nil {
			// Client went away. The engine still owns worker goroutines
			// blocked on this channel; drain it so they can exit (fast,
			// because r.Context() is already cancelled).
			for range items {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSurvey serves GET /v1/survey: the lifecycle view — current
// epoch, calibration parameters, swap/refresh counters, and the last
// refresh report.
func (s *server) handleSurvey(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.manager.Stats())
}

// handleRefresh serves POST /v1/survey/refresh: reprobe the landmark mesh
// and hot-swap a recalibrated epoch if anything drifted. An optional body
// {"landmarks": ["name", …]} scopes the reprobe to pairs touching the
// named landmarks (on-demand recalibration of suspects at O(k·n) probes);
// an empty or absent body refreshes every pair. Responds with the refresh
// report; traffic is served uninterrupted throughout.
func (s *server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Landmarks []string `json:"landmarks"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	var scope []int
	if len(req.Landmarks) > 0 {
		survey := s.manager.Current().Survey
		// A name maps to every landmark carrying it: landmark sets are
		// validated for uniqueness at load, but if duplicates slip in
		// (e.g. an older snapshot) a scoped refresh must cover them all
		// rather than silently reprobing one.
		byName := make(map[string][]int, survey.N())
		for i, lm := range survey.Landmarks {
			byName[lm.Name] = append(byName[lm.Name], i)
		}
		for _, name := range req.Landmarks {
			idx, ok := byName[name]
			if !ok {
				writeError(w, http.StatusBadRequest, "unknown landmark %q", name)
				return
			}
			scope = append(scope, idx...)
		}
	}
	report, err := s.manager.Refresh(r.Context(), scope)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// handleHealthz serves GET /v1/healthz.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	e := s.manager.Current()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"landmarks": e.Survey.N(),
		"epoch":     e.Number(),
		"uptime_s":  time.Since(s.started).Seconds(),
	})
}

// handleStats serves GET /v1/stats: the engine's counters, cache hit
// rate, in-flight count, and latency quantiles.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}
