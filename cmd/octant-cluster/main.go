// Command octant-cluster is the sharded serving tier's front door: it
// routes localizations across a fleet of octant-serve nodes with a
// bounded-load consistent-hash ring, serves repeats from a cluster-wide
// result cache (front-door L1, peer-fetch L2 against the key owner's
// node cache), and coordinates epoch rollouts — one node reprobes, the
// rest adopt its snapshot in a rolling wave that never takes two nodes
// out at once.
//
// Clients speak the same /v2 wire format to the front door as to a
// single node; batches are additionally epoch-coherent (one response
// never mixes survey epochs, even mid-rollout).
//
// Endpoints:
//
//	POST /v2/localize        {"target", "options"}  → routed result
//	POST /v2/localize/batch  {"targets", "options"} → NDJSON stream
//	GET  /v1/stats                                  → merged router + per-node stats
//	GET  /v1/cluster                                → ring members, loads, readiness
//	POST /v1/rollout         {"skip_refresh"?}      → coordinated epoch rollout
//	GET  /v1/healthz                                → liveness
//	GET  /v1/readyz                                 → 200 when ≥ 1 node is ready
//
// Usage, against three local nodes:
//
//	octant-serve -addr :8081 -seed 1 &
//	octant-serve -addr :8082 -seed 1 &
//	octant-serve -addr :8083 -seed 1 &
//	octant-cluster -addr :8080 \
//	    -nodes node-0=http://127.0.0.1:8081,node-1=http://127.0.0.1:8082,node-2=http://127.0.0.1:8083 \
//	    -rollout 15m
//
// Node specs are name=url pairs; a bare url gets the name node-<i>.
// Names are ring identities — keep them stable across restarts or the
// ring reshards. With -rollout the front door also drives periodic
// coordinated refreshes (the first node is the probe source).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"octant/internal/cluster"
	"octant/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("octant-cluster: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		nodeSpec   = flag.String("nodes", "", "comma-separated fleet members, each name=url or url (required)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default 128)")
		loadFactor = flag.Float64("load-factor", 0, "bounded-load ceiling as a multiple of mean load (0 = default 1.25, negative = unbounded)")
		cacheSize  = flag.Int("cache", 4096, "front-door L1 result-cache entries (negative disables)")
		maxBatch   = flag.Int("max-batch", 1024, "maximum targets per batch request")
		readyTTL   = flag.Duration("ready-ttl", 500*time.Millisecond, "how long a node readiness verdict is trusted before re-probing")
		rollout    = flag.Duration("rollout", 0, "periodic coordinated epoch rollout interval (0 = on-demand only, via POST /v1/rollout)")
		grace      = flag.Duration("shutdown-grace", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	nodes, err := parseNodes(*nodeSpec)
	if err != nil {
		log.Fatal(err)
	}
	router, err := cluster.NewRouter(nodes, cluster.RouterConfig{
		VNodes:     *vnodes,
		LoadFactor: *loadFactor,
		CacheSize:  *cacheSize,
		MaxBatch:   *maxBatch,
		ReadyTTL:   *readyTTL,
	})
	if err != nil {
		log.Fatal(err)
	}
	coord, err := cluster.NewCoordinator(nodes)
	if err != nil {
		log.Fatal(err)
	}
	front := cluster.NewFront(router, coord)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *rollout > 0 {
		log.Printf("rolling the fleet every %v (source %s)", *rollout, nodes[0].Name)
		go func() {
			tick := time.NewTicker(*rollout)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				report, err := coord.Rollout(ctx, cluster.RolloutOptions{})
				switch {
				case err != nil:
					log.Printf("rollout failed: %v", err)
				case report.Refreshed:
					log.Printf("rolled fleet to epoch %d in %.0f ms", report.Epoch, report.ElapsedMs)
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fronting %d nodes on %s (L1 cache %d)", len(nodes), ln.Addr(), *cacheSize)
	if err := serve.ServeUntilShutdown(ctx, &http.Server{Handler: front.Handler()}, ln, *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained, exiting")
}

// parseNodes turns "-nodes a=http://…,b=http://…" (or bare URLs) into
// fleet clients, rejecting duplicates in either coordinate.
func parseNodes(spec string) ([]*cluster.NodeClient, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-nodes is required (name=url,name=url,…)")
	}
	var nodes []*cluster.NodeClient
	seenName := make(map[string]bool)
	seenURL := make(map[string]bool)
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url := fmt.Sprintf("node-%d", i), part
		if eq := strings.Index(part, "="); eq >= 0 {
			name, url = strings.TrimSpace(part[:eq]), strings.TrimSpace(part[eq+1:])
		}
		if name == "" || url == "" {
			return nil, fmt.Errorf("bad node spec %q: want name=url", part)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, fmt.Errorf("node %s: url %q must start with http:// or https://", name, url)
		}
		if seenName[name] {
			return nil, fmt.Errorf("duplicate node name %q", name)
		}
		if seenURL[url] {
			return nil, fmt.Errorf("duplicate node url %q", url)
		}
		seenName[name], seenURL[url] = true, true
		nodes = append(nodes, &cluster.NodeClient{Name: name, BaseURL: strings.TrimRight(url, "/")})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-nodes is required (name=url,name=url,…)")
	}
	return nodes, nil
}
