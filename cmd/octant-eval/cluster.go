package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"octant/internal/cluster"
	"octant/internal/serve"
)

// runCluster is the -cluster mode: a netsim-backed load harness for the
// sharded serving tier. It has three legs:
//
// Serialized baseline — a 1-node fleet whose localizer measures through
// the legacy one-probe-at-a-time loop, emitted as ClusterNodes1Serial.
// The run fails unless the concurrent 1-node leg clears minNodeSpeedup×
// this baseline's throughput — the per-node fan-out gate CI enforces.
//
// Scaling — start in-process fleets of 1, 2 and 4 nodes (2 engine
// workers each, probe trains paced so the worker pools are the
// bottleneck, as in a deployment), push the same set of unique
// (target, fingerprint) keys through a front-door router against each,
// and emit ClusterNodes{1,2,4} bench lines (pipe into -bench-json).
// The run fails unless the 2-node fleet clears minScale× the 1-node
// throughput — the near-linear-scaling gate CI enforces.
//
// Soak — a 2-node fleet under continuous mixed load takes a full
// coordinated epoch rollout (drift → refresh → snapshot push → rolling
// drain/activate). The run fails on any request error, any mixed-epoch
// batch response, any bit-identity violation across nodes within one
// (target, fingerprint, epoch), or a fleet that does not converge to
// the pushed epoch.
func runCluster(seed uint64, keys int, pace time.Duration, minScale, minNodeSpeedup float64) error {
	if keys < 8 {
		return fmt.Errorf("-cluster-keys must be ≥ 8 (got %d)", keys)
	}
	serialElapsed, err := clusterScalingLeg(seed, 1, keys, pace, true)
	if err != nil {
		return fmt.Errorf("serialized baseline leg: %w", err)
	}
	serialTargetsSec := float64(keys) / serialElapsed.Seconds()
	fmt.Printf("BenchmarkClusterNodes1Serial \t       1\t%d ns/op\t%.2f targets/s\n",
		serialElapsed.Nanoseconds(), serialTargetsSec)

	type leg struct {
		nodes      int
		targetsSec float64
	}
	legs := []leg{{nodes: 1}, {nodes: 2}, {nodes: 4}}
	for i := range legs {
		elapsed, err := clusterScalingLeg(seed, legs[i].nodes, keys, pace, false)
		if err != nil {
			return fmt.Errorf("%d-node leg: %w", legs[i].nodes, err)
		}
		legs[i].targetsSec = float64(keys) / elapsed.Seconds()
		fmt.Printf("BenchmarkClusterNodes%d \t       1\t%d ns/op\t%.2f targets/s\n",
			legs[i].nodes, elapsed.Nanoseconds(), legs[i].targetsSec)
	}
	nodeSpeedup := legs[0].targetsSec / serialTargetsSec
	scale2 := legs[1].targetsSec / legs[0].targetsSec
	scale4 := legs[2].targetsSec / legs[0].targetsSec
	fmt.Printf("cluster scaling: %d keys, pace %v: concurrent fan-out %.2f× the serialized node, 2-node %.2f×, 4-node %.2f× the 1-node throughput\n",
		keys, pace, nodeSpeedup, scale2, scale4)
	if nodeSpeedup < minNodeSpeedup {
		return fmt.Errorf("concurrent measurement lifted per-node throughput only %.2f× over the serialized loop (gate %.2f×)", nodeSpeedup, minNodeSpeedup)
	}
	if scale2 < minScale {
		return fmt.Errorf("2-node fleet scaled only %.2f× over 1 node (gate %.2f×)", scale2, minScale)
	}

	if err := clusterSoakLeg(seed); err != nil {
		return err
	}
	fmt.Println("cluster soak: rolling swap under load, zero errors, bit-identity OK")
	return nil
}

// clusterKeyOptions mints the i-th option variant: distinct source
// weights give distinct fingerprints, so every (target, variant) pair is
// a distinct cache/ring key and no tier can serve one request from
// another's result.
func clusterKeyOptions(i int) *serve.WireOptions {
	if i == 0 {
		return nil
	}
	return &serve.WireOptions{Weights: map[string]float64{"router": 1 + 0.001*float64(i)}}
}

// clusterScalingLeg measures one fleet size. Every leg offers the same
// load — keys distinct (target, fingerprint) localizations from a fixed
// pool of client workers, far more than any leg can absorb at once — so
// wall clock measures fleet capacity, not client parallelism. The
// router's bounded-load ring spreads the in-flight work: when a key's
// owner is saturated the dispatch spills to the next preference, which
// is what evens utilization across nodes despite skewed key ownership.
func clusterScalingLeg(seed uint64, nodes, keys int, pace time.Duration, serialized bool) (time.Duration, error) {
	cfg := cluster.FleetConfig{
		Nodes:     nodes,
		Seed:      seed,
		ProbePace: pace,
	}
	if serialized {
		// The baseline node models the pre-scheduler stack end to end:
		// the one-probe-at-a-time measurement loop over a single
		// serialized pinger pipeline.
		cfg.SerializedMeasurement = true
		cfg.ProbeLanes = 1
	}
	fleet, err := cluster.StartLocalFleet(cfg)
	if err != nil {
		return 0, err
	}
	defer fleet.Close()
	router, err := cluster.NewRouter(fleet.Clients(), cluster.RouterConfig{})
	if err != nil {
		return 0, err
	}
	ctx := context.Background()

	// One unpaced, untimed localization per node first, so per-epoch
	// lazy state (rasterized geography, pooled grids) exists everywhere
	// before the clock starts.
	warm := &serve.WireOptions{Weights: map[string]float64{"latency": 0.999}}
	for _, client := range fleet.Clients() {
		if _, err := client.LocalizeV2(ctx, fleet.Targets[0], warm); err != nil {
			return 0, fmt.Errorf("warmup on %s: %w", client.Name, err)
		}
	}

	targets := fleet.Targets
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	const clientWorkers = 16
	start := time.Now()
	for w := 0; w < clientWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobs {
				tgt := targets[k%len(targets)]
				res, err := router.Localize(ctx, tgt, clusterKeyOptions(k/len(targets)))
				if err == nil && res.Error != "" {
					err = fmt.Errorf("%s", res.Error)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("key %d (%s): %w", k, tgt, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for k := 0; k < keys; k++ {
		jobs <- k
	}
	close(jobs)
	wg.Wait()
	return time.Since(start), firstErr
}

// clusterSoakLeg drives a 2-node fleet through a coordinated rollout
// under continuous load and verifies the cluster's serving invariants
// held throughout. It mirrors internal/cluster's TestClusterSoak so the
// same acceptance runs standalone (and in CI without the race detector's
// time dilation).
func clusterSoakLeg(seed uint64) error {
	fleet, err := cluster.StartLocalFleet(cluster.FleetConfig{
		Nodes:         2,
		Seed:          seed,
		Holdout:       40,
		ActivateDrain: 200 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer fleet.Close()
	router, err := cluster.NewRouter(fleet.Clients(), cluster.RouterConfig{ReadyTTL: 15 * time.Millisecond})
	if err != nil {
		return err
	}
	coord, err := cluster.NewCoordinator(fleet.Clients())
	if err != nil {
		return err
	}

	type soakKey struct {
		target string
		fp     int
		epoch  uint64
	}
	type soakVal struct{ lat, lon, area float64 }
	var (
		mu   sync.Mutex
		seen = make(map[soakKey]soakVal)
		errs []string
	)
	record := func(target string, fp int, epoch uint64, lat, lon, area float64) {
		mu.Lock()
		defer mu.Unlock()
		k := soakKey{target: target, fp: fp, epoch: epoch}
		v := soakVal{lat: lat, lon: lon, area: area}
		if prev, ok := seen[k]; ok {
			if prev != v {
				errs = append(errs, fmt.Sprintf("bit-identity violation for %+v: %+v vs %+v", k, v, prev))
			}
			return
		}
		seen[k] = v
	}
	fail := func(format string, args ...any) {
		mu.Lock()
		errs = append(errs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	targets := fleet.Targets[:6]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				variant := (w + i) % 2
				if i%3 == 0 {
					batch := []string{
						targets[i%len(targets)],
						targets[(i+1)%len(targets)],
						targets[(i+2)%len(targets)],
					}
					results, err := router.Batch(ctx, batch, clusterKeyOptions(variant))
					if err != nil {
						if ctx.Err() == nil {
							fail("worker %d batch: %v", w, err)
						}
						return
					}
					for _, res := range results {
						if res.Error != "" {
							fail("worker %d batch %s: %s", w, res.Target, res.Error)
							continue
						}
						if res.Epoch != results[0].Epoch {
							fail("worker %d: mixed epochs in one batch (%d vs %d)", w, res.Epoch, results[0].Epoch)
						}
						if res.Lat != nil {
							record(res.Target, variant, res.Epoch, *res.Lat, *res.Lon, res.AreaKm2)
						}
					}
					continue
				}
				tgt := targets[(w+i)%len(targets)]
				res, err := router.Localize(ctx, tgt, clusterKeyOptions(variant))
				if err != nil {
					if ctx.Err() == nil {
						fail("worker %d localize %s: %v", w, tgt, err)
					}
					return
				}
				if res.Error != "" {
					fail("worker %d localize %s: %s", w, tgt, res.Error)
				} else if res.Lat != nil {
					record(tgt, variant, res.Epoch, *res.Lat, *res.Lon, res.AreaKm2)
				}
			}
		}(w)
	}

	time.Sleep(150 * time.Millisecond)
	survey := fleet.Nodes[0].Server.Manager().Current().Survey
	a, _ := fleet.World.HostByName(survey.Landmarks[0].Addr)
	b, _ := fleet.World.HostByName(survey.Landmarks[1].Addr)
	fleet.World.SetPairDriftMs(a.ID, b.ID, 25)

	report, err := coord.Rollout(ctx, cluster.RolloutOptions{})
	if err != nil {
		cancel()
		wg.Wait()
		return fmt.Errorf("rollout under load: %w", err)
	}
	if !report.Refreshed || report.Epoch != 1 {
		return fmt.Errorf("rollout did not publish epoch 1 (refreshed=%v epoch=%d)", report.Refreshed, report.Epoch)
	}
	time.Sleep(200 * time.Millisecond)
	cancel()
	wg.Wait()

	if len(errs) > 0 {
		return fmt.Errorf("cluster soak: %d violations, first: %s", len(errs), errs[0])
	}
	for _, client := range fleet.Clients() {
		rd, err := client.Ready(context.Background())
		if err != nil {
			return fmt.Errorf("%s: %w", client.Name, err)
		}
		if !rd.Ready || rd.Epoch != 1 {
			return fmt.Errorf("%s not ready at epoch 1 after rollout (ready=%v epoch=%d)", client.Name, rd.Ready, rd.Epoch)
		}
	}
	epochs := make(map[uint64]bool)
	for k := range seen {
		epochs[k.epoch] = true
	}
	if !epochs[0] || !epochs[1] {
		return fmt.Errorf("soak observed epochs %v, want both 0 and 1", epochs)
	}
	return nil
}
