package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"octant/internal/core"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// pacedProber adds fixed wire time to every ping train, so the bulk
// benchmark measures what a deployment would: per-target measurement
// latency that the fused batch solve overlaps across targets (the
// simulator itself answers instantly).
type pacedProber struct {
	probe.Prober
	delay time.Duration
}

func (p pacedProber) Ping(src, dst string, n int) ([]float64, error) {
	time.Sleep(p.delay)
	return p.Prober.Ping(src, dst, n)
}

// runBulk is the -bulk mode: localize one homogeneous batch of nTargets
// (cycling over 8 held-out hosts) twice — a per-target sequential loop,
// then the fused core.LocalizeBatchWith path at the given worker count —
// and emit both passes as go-bench-format lines (ns/op, allocs/op,
// targets/s) that -bench-json archives into BENCH_<sha>.json. The run is
// its own differential parity check: any fused result that is not
// bit-identical to its sequential reference fails the command.
func runBulk(seed uint64, nTargets, workers int, pace time.Duration) error {
	if nTargets < 1 {
		return fmt.Errorf("-bulk-targets must be ≥ 1 (got %d)", nTargets)
	}
	world := netsim.NewWorld(netsim.Config{Seed: seed})
	prober := probe.NewSimProber(world)
	hosts := world.HostNodes()
	const hold = 8
	var lms []core.Landmark
	for _, h := range hosts[hold:] {
		lms = append(lms, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	// The survey builds unpaced: its O(n²) mesh is not what bulk measures.
	survey, err := core.NewSurvey(prober, lms, core.SurveyOpts{UseHeights: true})
	if err != nil {
		return err
	}
	targets := make([]string, nTargets)
	for i := range targets {
		targets[i] = hosts[i%hold].Name
	}
	// The sequential reference pins MeasureWorkers to the legacy
	// serialized probe loop: the gate compares the fused stack against
	// the pre-batch, pre-scheduler deployment, and letting the baseline
	// fan out its own probes would quietly re-baseline the ≥5× floor.
	// The parity check below doubles as a differential test that the
	// concurrent scheduler is bit-identical to the serialized loop.
	paced := pacedProber{Prober: prober, delay: pace}
	seqLoc := core.NewLocalizer(paced, survey, core.Config{MeasureWorkers: -1})
	loc := core.NewLocalizer(paced, survey, core.Config{})

	// One warmup localization per localizer so land-mask masters and
	// pooled grids exist before either timed pass.
	if _, err := seqLoc.Localize(targets[0]); err != nil {
		return err
	}
	if _, err := loc.Localize(targets[0]); err != nil {
		return err
	}

	measure := func(run func() error) (time.Duration, uint64, error) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		err := run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return elapsed, after.Mallocs - before.Mallocs, err
	}

	seq := make([]*core.Result, len(targets))
	seqElapsed, seqAllocs, err := measure(func() error {
		for i, tgt := range targets {
			res, err := seqLoc.Localize(tgt)
			if err != nil {
				return fmt.Errorf("sequential %s: %w", tgt, err)
			}
			seq[i] = res
		}
		return nil
	})
	if err != nil {
		return err
	}

	var fused []*core.Result
	fusedElapsed, fusedAllocs, err := measure(func() error {
		results, errs := loc.LocalizeBatchWith(context.Background(), targets, workers, nil)
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("fused %s: %w", targets[i], err)
			}
		}
		fused = results
		return nil
	})
	if err != nil {
		return err
	}

	// Differential parity: batching must change throughput, never answers.
	for i, res := range fused {
		ref := seq[i]
		if res.Point != ref.Point || res.AreaKm2 != ref.AreaKm2 ||
			res.Weight != ref.Weight || res.TargetHeightMs != ref.TargetHeightMs {
			return fmt.Errorf("bulk parity violation at %s: fused %v / %.6f km² diverges from sequential %v / %.6f km²",
				targets[i], res.Point, res.AreaKm2, ref.Point, ref.AreaKm2)
		}
	}

	n := float64(len(targets))
	emit := func(name string, d time.Duration, allocs uint64) {
		fmt.Printf("Benchmark%s \t       1\t%d ns/op\t%d allocs/op\t%.2f targets/s\n",
			name, d.Nanoseconds(), allocs, n/d.Seconds())
	}
	emit("BulkSequential", seqElapsed, seqAllocs)
	emit("BulkFused", fusedElapsed, fusedAllocs)
	fmt.Printf("bulk: %d targets (%d hosts), %d workers, %v pace: fused %.2f× sequential throughput, parity OK\n",
		nTargets, hold, workers, pace, seqElapsed.Seconds()/fusedElapsed.Seconds())
	return nil
}
