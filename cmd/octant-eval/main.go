// Command octant-eval regenerates the paper's evaluation figures over the
// simulated 51-node PlanetLab deployment:
//
//	octant-eval -fig 2   # latency/distance scatter + hull + spline (Fig. 2)
//	octant-eval -fig 3   # error CDF, Octant vs GeoLim/GeoPing/GeoTrack (Fig. 3)
//	octant-eval -fig 4   # region containment vs landmark count (Fig. 4)
//	octant-eval -fig all # everything
//
// Flags -seed, -step (Fig. 3 target stride) and -trials (Fig. 4 subsets per
// count) trade fidelity for speed.
//
// It also converts `go test -bench` text output into the JSON the CI bench
// job archives per commit, seeding the performance trajectory:
//
//	go test -run '^$' -bench . -benchmem ./... | octant-eval -bench-json - -commit $SHA -out BENCH_$SHA.json
//
// and gates perf regressions between two archived reports — CI compares a
// commit against its parent's artifact and fails on a >20% ns/op slowdown
// of the named benchmarks:
//
//	octant-eval -bench-old BENCH_parent.json -bench-new BENCH_head.json \
//	    -bench-names Fig1RegionCombination,Localize -max-regress 0.20
//
// The -bulk mode benchmarks bulk localization throughput — a paced
// per-target loop vs the fused LocalizeBatch path over one homogeneous
// batch — emitting bench-format lines for the archive and failing unless
// the fused results are bit-identical to the sequential references:
//
//	octant-eval -bulk | octant-eval -bench-json - -commit $SHA
//
// The -cluster mode load-tests the sharded serving tier over in-process
// fleets: 1/2/4-node scaling legs emitted as ClusterNodes{1,2,4} bench
// lines (gated: 2 nodes must clear -cluster-min-scale × the 1-node
// throughput) followed by a rolling-swap soak that fails on any request
// error, mixed-epoch batch, or cross-node bit-identity violation:
//
//	octant-eval -cluster | octant-eval -bench-json - -commit $SHA
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"octant/internal/core"
	"octant/internal/eval"
	"octant/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("octant-eval: ")
	var (
		fig       = flag.String("fig", "all", "which figure to regenerate: 2, 3, 4, or all")
		seed      = flag.Uint64("seed", 1, "world seed")
		step      = flag.Int("step", 1, "Figure 3: localize every step-th node (1 = all 51)")
		trials    = flag.Int("trials", 2, "Figure 4: random landmark subsets per count")
		landmark  = flag.String("landmark", "rochester", "Figure 2: landmark to calibrate (the paper uses rochester)")
		benchJSON = flag.String("bench-json", "", "convert 'go test -bench' output (file path or - for stdin) to JSON and exit")
		commit    = flag.String("commit", "", "commit hash recorded in -bench-json output")
		out       = flag.String("out", "", "output path for -bench-json (default stdout)")

		benchOld   = flag.String("bench-old", "", "baseline BENCH_<sha>.json for -bench-new comparison")
		benchNew   = flag.String("bench-new", "", "candidate BENCH_<sha>.json compared against -bench-old")
		benchNames = flag.String("bench-names", "Fig1RegionCombination,Localize", "comma-separated benchmark names gated by the comparison")
		maxRegress = flag.Float64("max-regress", 0.20, "fail when a gated benchmark's ns/op regresses by more than this fraction")

		benchReport = flag.String("bench-report", "", "single BENCH_<sha>.json report for -bench-within")
		benchWithin = flag.String("bench-within", "", "cand=base:nsfrac[:allocs] — within -bench-report, fail unless cand's ns/op ≤ base's·(1+nsfrac) and cand adds ≤ allocs allocs/op (default 0); e.g. LocalizeV2=Localize:0.02:0")

		bulk        = flag.Bool("bulk", false, "bulk throughput mode: paced per-target loop vs fused LocalizeBatch over one homogeneous batch, emitted as bench lines (pipe into -bench-json); exits non-zero if the fused results are not bit-identical")
		bulkTargets = flag.Int("bulk-targets", 64, "bulk mode: targets per batch (cycles over the 8 held-out hosts)")
		bulkWorkers = flag.Int("bulk-workers", 8, "bulk mode: fused worker count")
		bulkPace    = flag.Duration("bulk-pace", 5*time.Millisecond, "bulk mode: simulated wire time per ping train")

		clusterOn       = flag.Bool("cluster", false, "cluster mode: 1/2/4-node fleet scaling legs (emitted as bench lines) plus a rolling-swap soak; exits non-zero on the scaling gate or any soak violation")
		clusterKeys     = flag.Int("cluster-keys", 64, "cluster mode: unique (target, fingerprint) keys per scaling leg")
		clusterPace     = flag.Duration("cluster-pace", 4*time.Millisecond, "cluster mode: wire time each ping train occupies one of a node's probing lanes (makes per-node measurement capacity the bottleneck)")
		clusterMinScale = flag.Float64("cluster-min-scale", 1.7, "cluster mode: fail unless the 2-node fleet clears this multiple of 1-node throughput")
		clusterMinNode  = flag.Float64("cluster-min-node-speedup", 3, "cluster mode: fail unless the concurrent-measurement 1-node leg clears this multiple of the serialized-measurement baseline's throughput")

		chaosOn       = flag.Bool("chaos", false, "chaos mode: kill/revive landmarks and serve nodes under load; exits non-zero on any client-visible error, missing degraded-mode coverage, unbounded accuracy loss, or failed recovery")
		chaosNodes    = flag.Int("chaos-nodes", 3, "chaos mode: serving-fleet size (≥ 3)")
		chaosDuration = flag.Duration("chaos-duration", 3*time.Second, "chaos mode: total fault-injection window (split across landmark-fault, node-kill, and recovery phases)")
		chaosFrac     = flag.Float64("chaos-landmarks", 0.2, "chaos mode: fraction of survey landmarks downed during the landmark-fault phase")

		hintsOn = flag.Bool("hints", false, "hints mode: score the rDNS/geo-DB evidence stages on a truthful hint world (gate: hinted median ≤ baseline) and a poisoned one (gate: cross-validation drops fire and the median stays within 10% of baseline), emitted as bench lines")
	)
	flag.Parse()

	if *chaosOn {
		if err := runChaos(*seed, *chaosNodes, *chaosDuration, *chaosFrac); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *clusterOn {
		if err := runCluster(*seed, *clusterKeys, *clusterPace, *clusterMinScale, *clusterMinNode); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *bulk {
		if err := runBulk(*seed, *bulkTargets, *bulkWorkers, *bulkPace); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *hintsOn {
		if err := runHints(*seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *benchJSON != "" {
		if err := emitBenchJSON(*benchJSON, *commit, *out); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchOld != "" || *benchNew != "" {
		if *benchOld == "" || *benchNew == "" {
			log.Fatal("-bench-old and -bench-new must be given together")
		}
		if err := compareBench(*benchOld, *benchNew, strings.Split(*benchNames, ","), *maxRegress); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchWithin != "" || *benchReport != "" {
		if *benchWithin == "" || *benchReport == "" {
			log.Fatal("-bench-within and -bench-report must be given together")
		}
		if err := compareWithin(*benchReport, *benchWithin); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("building deployment (seed %d)...\n", *seed)
	d, err := eval.NewDeployment(*seed)
	if err != nil {
		log.Fatal(err)
	}

	if *fig == "2" || *fig == "all" {
		f, err := d.RunFig2(*landmark)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Println(f.Format())
	}

	if *fig == "3" || *fig == "all" {
		fmt.Println("\nFigure 3 — localization error CDF (leave-one-out, miles)")
		res, err := d.RunFig3(core.Config{}, *step)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.FormatCDF())
		fmt.Println("§3 accuracy table:")
		fmt.Println(stats.FormatTable(res.Summaries(), "mi"))
		for _, row := range res.Rows {
			if row.HasRegion {
				fmt.Printf("%-10s region contained truth for %d/%d targets\n",
					row.Name, row.Contained, res.Targets)
			}
		}
	}

	if *fig == "4" || *fig == "all" {
		fmt.Println("\nFigure 4 — % of targets inside the estimated region vs landmarks")
		pts, err := d.RunFig4(core.Config{}, nil, *trials, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatFig4(pts))
	}
}

// benchResult is one parsed benchmark line. Metrics maps unit → value for
// every "value unit" pair the line reports (ns/op, B/op, allocs/op, plus
// any custom b.ReportMetric units like targets/s).
type benchResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchReport is the archived BENCH_<sha>.json payload.
type benchReport struct {
	Commit  string        `json:"commit,omitempty"`
	Go      string        `json:"go"`
	GOOS    string        `json:"goos"`
	GOARCH  string        `json:"goarch"`
	Results []benchResult `json:"results"`
}

// emitBenchJSON parses `go test -bench` text from src ("-" = stdin) and
// writes the JSON report to outPath (empty = stdout).
func emitBenchJSON(src, commit, outPath string) error {
	var r io.Reader = os.Stdin
	if src != "-" {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	report := benchReport{
		Commit: commit,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseBenchLine(sc.Text())
		if ok {
			report.Results = append(report.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(report.Results) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", src)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

// compareBench loads two archived bench reports and fails when any gated
// benchmark's ns/op regressed by more than maxRegress. Names absent from
// either report are skipped with a note (benchmarks come and go), so the
// gate never blocks a commit for renaming or adding benches.
func compareBench(oldPath, newPath string, names []string, maxRegress float64) error {
	oldNs, err := loadBenchNs(oldPath)
	if err != nil {
		return err
	}
	newNs, err := loadBenchNs(newPath)
	if err != nil {
		return err
	}
	var failures []string
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		was, okOld := oldNs[name]
		now, okNew := newNs[name]
		if !okOld || !okNew {
			fmt.Printf("bench-compare: %-24s skipped (missing from %s)\n", name,
				map[bool]string{true: "baseline", false: "candidate"}[!okOld])
			continue
		}
		change := now/was - 1
		fmt.Printf("bench-compare: %-24s %12.0f → %12.0f ns/op  (%+.1f%%)\n", name, was, now, 100*change)
		if change > maxRegress {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (budget %.0f%%)", name, 100*change, 100*maxRegress))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench regression: %s", strings.Join(failures, "; "))
	}
	return nil
}

// compareWithin gates one benchmark against another from the SAME report:
// spec is "cand=base:nsfrac[:allocs]". It fails when cand's best ns/op
// exceeds base's by more than nsfrac, or when cand allocates more than
// allocs extra allocs/op (default 0). This is how CI asserts the v2
// options plumbing is free on the default path: LocalizeV2=Localize:0.02:0.
func compareWithin(reportPath, spec string) error {
	eq := strings.Index(spec, "=")
	if eq <= 0 {
		return fmt.Errorf("bad -bench-within %q (want cand=base:nsfrac[:allocs])", spec)
	}
	cand := spec[:eq]
	rest := strings.Split(spec[eq+1:], ":")
	if len(rest) < 2 || len(rest) > 3 {
		return fmt.Errorf("bad -bench-within %q (want cand=base:nsfrac[:allocs])", spec)
	}
	base := rest[0]
	nsFrac, err := strconv.ParseFloat(rest[1], 64)
	if err != nil {
		return fmt.Errorf("bad nsfrac in %q: %w", spec, err)
	}
	maxExtraAllocs := 0.0
	if len(rest) == 3 {
		if maxExtraAllocs, err = strconv.ParseFloat(rest[2], 64); err != nil {
			return fmt.Errorf("bad allocs in %q: %w", spec, err)
		}
	}
	stats, err := loadBenchStats(reportPath)
	if err != nil {
		return err
	}
	cs, ok := stats[cand]
	if !ok {
		return fmt.Errorf("benchmark %s missing from %s", cand, reportPath)
	}
	bs, ok := stats[base]
	if !ok {
		return fmt.Errorf("benchmark %s missing from %s", base, reportPath)
	}
	if !cs.hasAllocs || !bs.hasAllocs {
		// The alloc budget is half the gate; a report missing allocs/op
		// (benches run without -benchmem) must fail loudly, not compare
		// against a phantom 0.
		return fmt.Errorf("%s lacks allocs/op for %s and/or %s — run the benchmarks with -benchmem", reportPath, cand, base)
	}
	change := cs.ns/bs.ns - 1
	fmt.Printf("bench-within: %s %.0f ns/op vs %s %.0f ns/op (%+.1f%%, budget %+.0f%%)\n",
		cand, cs.ns, base, bs.ns, 100*change, 100*nsFrac)
	fmt.Printf("bench-within: %s %.0f allocs/op vs %s %.0f allocs/op (budget +%g)\n",
		cand, cs.allocs, base, bs.allocs, maxExtraAllocs)
	if change > nsFrac {
		return fmt.Errorf("%s is %.1f%% slower than %s (budget %.0f%%)", cand, 100*change, base, 100*nsFrac)
	}
	if cs.allocs > bs.allocs+maxExtraAllocs {
		return fmt.Errorf("%s allocates %.0f/op, %s %.0f/op (budget +%g)", cand, cs.allocs, base, bs.allocs, maxExtraAllocs)
	}
	return nil
}

// benchStat is a benchmark's best observed numbers in one report.
// hasAllocs distinguishes "0 allocs/op" from "run without -benchmem".
type benchStat struct {
	ns, allocs float64
	hasAllocs  bool
}

// loadBenchStats maps base benchmark names (GOMAXPROCS suffix stripped)
// to their best observed ns/op and allocs/op in a report.
func loadBenchStats(path string) (map[string]benchStat, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]benchStat)
	for _, r := range report.Results {
		ns, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		name := r.Name
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		allocs, hasAllocs := r.Metrics["allocs/op"]
		prev, seen := out[name]
		if !seen {
			out[name] = benchStat{ns: ns, allocs: allocs, hasAllocs: hasAllocs}
			continue
		}
		if ns < prev.ns {
			prev.ns = ns
		}
		// Min-merge allocs only across lines that actually reported them;
		// a -benchmem-less line must not masquerade as a 0-alloc best.
		if hasAllocs && (!prev.hasAllocs || allocs < prev.allocs) {
			prev.allocs, prev.hasAllocs = allocs, true
		}
		out[name] = prev
	}
	return out, nil
}

// loadBenchNs maps base benchmark names to their best observed ns/op.
func loadBenchNs(path string) (map[string]float64, error) {
	stats, err := loadBenchStats(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(stats))
	for name, s := range stats {
		out[name] = s.ns
	}
	return out, nil
}

// parseBenchLine parses one "BenchmarkX-8  100  123 ns/op  4 B/op …" line.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	res := benchResult{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Iters:   iters,
		Metrics: make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return benchResult{}, false
	}
	return res, true
}
