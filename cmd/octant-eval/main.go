// Command octant-eval regenerates the paper's evaluation figures over the
// simulated 51-node PlanetLab deployment:
//
//	octant-eval -fig 2   # latency/distance scatter + hull + spline (Fig. 2)
//	octant-eval -fig 3   # error CDF, Octant vs GeoLim/GeoPing/GeoTrack (Fig. 3)
//	octant-eval -fig 4   # region containment vs landmark count (Fig. 4)
//	octant-eval -fig all # everything
//
// Flags -seed, -step (Fig. 3 target stride) and -trials (Fig. 4 subsets per
// count) trade fidelity for speed.
package main

import (
	"flag"
	"fmt"
	"log"

	"octant/internal/core"
	"octant/internal/eval"
	"octant/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("octant-eval: ")
	var (
		fig      = flag.String("fig", "all", "which figure to regenerate: 2, 3, 4, or all")
		seed     = flag.Uint64("seed", 1, "world seed")
		step     = flag.Int("step", 1, "Figure 3: localize every step-th node (1 = all 51)")
		trials   = flag.Int("trials", 2, "Figure 4: random landmark subsets per count")
		landmark = flag.String("landmark", "rochester", "Figure 2: landmark to calibrate (the paper uses rochester)")
	)
	flag.Parse()

	fmt.Printf("building deployment (seed %d)...\n", *seed)
	d, err := eval.NewDeployment(*seed)
	if err != nil {
		log.Fatal(err)
	}

	if *fig == "2" || *fig == "all" {
		f, err := d.RunFig2(*landmark)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Println(f.Format())
	}

	if *fig == "3" || *fig == "all" {
		fmt.Println("\nFigure 3 — localization error CDF (leave-one-out, miles)")
		res, err := d.RunFig3(core.Config{}, *step)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.FormatCDF())
		fmt.Println("§3 accuracy table:")
		fmt.Println(stats.FormatTable(res.Summaries(), "mi"))
		for _, row := range res.Rows {
			if row.HasRegion {
				fmt.Printf("%-10s region contained truth for %d/%d targets\n",
					row.Name, row.Contained, res.Targets)
			}
		}
	}

	if *fig == "4" || *fig == "all" {
		fmt.Println("\nFigure 4 — % of targets inside the estimated region vs landmarks")
		pts, err := d.RunFig4(core.Config{}, nil, *trials, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatFig4(pts))
	}
}
