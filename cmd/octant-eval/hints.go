package main

import (
	"context"
	"fmt"
	"time"

	"octant/internal/core"
	"octant/internal/geodb"
	"octant/internal/netsim"
	"octant/internal/probe"
	"octant/internal/stats"
)

// runHints is the -hints mode: score the hint-rich evidence stages (rDNS
// gazetteer hints + passive geo-DB priors) against the latency-only
// pipeline on two synthetic worlds, and emit both legs as bench-format
// lines for the archive.
//
// Leg 1 (truthful): a world whose eligible end hosts carry hint-bearing
// reverse names and a fresh synthetic geo-DB. Gate: the hint-enabled
// median error must not exceed the hint-free baseline on the same
// survey — honest exogenous evidence may only help.
//
// Leg 2 (adversarial): every reverse-name hint and every geo-DB record
// points ≥ 1500 km away from the truth. Gate: the RTT cross-validation
// must actually fire (dropped priors observed in Provenance), and the
// poisoned median must stay within wrongTolerance of the hint-free
// baseline — bad hints cost the hint, not the answer.
func runHints(seed uint64) error {
	const (
		hold           = 16
		hintFrac       = 0.85
		wrongTolerance = 0.10
	)

	truthful, err := newHintLeg(netsim.Config{Seed: seed, HostRDNSHintFrac: hintFrac}, hold,
		func(w *netsim.World) geodb.Provider {
			return geodb.NewSynth(w, geodb.SynthOpts{Seed: seed})
		})
	if err != nil {
		return err
	}
	poisoned, err := newHintLeg(netsim.Config{Seed: seed, HostRDNSHintFrac: hintFrac, HostRDNSWrongFrac: 1}, hold,
		func(w *netsim.World) geodb.Provider {
			return geodb.NewSynth(w, geodb.SynthOpts{Seed: seed, WrongFrac: 1})
		})
	if err != nil {
		return err
	}

	emit := func(name string, leg *hintLeg) {
		fmt.Printf("Benchmark%s \t       1\t%d ns/op\t%.2f hinted-km\t%.2f baseline-km\t%d dropped\n",
			name, leg.elapsed.Nanoseconds(), leg.hintedMedianKm, leg.baseMedianKm, leg.dropped)
	}
	emit("HintsTruthful", truthful)
	emit("HintsPoisoned", poisoned)

	fmt.Printf("hints: truthful median %.1f km hinted vs %.1f km baseline; poisoned median %.1f km hinted vs %.1f km baseline, %d priors dropped\n",
		truthful.hintedMedianKm, truthful.baseMedianKm,
		poisoned.hintedMedianKm, poisoned.baseMedianKm, poisoned.dropped)

	if truthful.hintedMedianKm > truthful.baseMedianKm {
		return fmt.Errorf("hints gate: truthful hints worsened the median: %.2f km hinted vs %.2f km baseline",
			truthful.hintedMedianKm, truthful.baseMedianKm)
	}
	if poisoned.dropped == 0 {
		return fmt.Errorf("hints gate: poisoned world produced no cross-validation drops — the RTT bound never fired")
	}
	if poisoned.hintedMedianKm > poisoned.baseMedianKm*(1+wrongTolerance) {
		return fmt.Errorf("hints gate: poisoned hints degraded the median beyond %.0f%%: %.2f km hinted vs %.2f km baseline",
			100*wrongTolerance, poisoned.hintedMedianKm, poisoned.baseMedianKm)
	}
	fmt.Println("hints: gates OK")
	return nil
}

// hintLeg is one world's scored pass: median error with the full
// hint-rich pipeline vs the same survey with rdns+geodb disabled.
type hintLeg struct {
	hintedMedianKm float64
	baseMedianKm   float64
	// dropped counts exogenous priors the RTT cross-validation rejected
	// across the hinted pass (Provenance.DroppedHints).
	dropped int
	elapsed time.Duration
}

// newHintLeg builds a world, holds the first hold hosts out of the survey
// as targets, and localizes each twice: once with the hint stages live
// (geo-DB from mkDB), once with both disabled. Both passes share one
// survey, so the delta is purely the exogenous evidence.
func newHintLeg(cfg netsim.Config, hold int, mkDB func(*netsim.World) geodb.Provider) (*hintLeg, error) {
	world := netsim.NewWorld(cfg)
	prober := probe.NewSimProber(world)
	hosts := world.HostNodes()
	if hold >= len(hosts) {
		return nil, fmt.Errorf("hints: hold %d leaves no landmarks (have %d hosts)", hold, len(hosts))
	}
	var lms []core.Landmark
	for _, h := range hosts[hold:] {
		lms = append(lms, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	survey, err := core.NewSurvey(prober, lms, core.SurveyOpts{UseHeights: true})
	if err != nil {
		return nil, err
	}
	hinted := core.NewLocalizer(prober, survey, core.Config{GeoDB: mkDB(world)})
	base := core.NewLocalizer(prober, survey, core.Config{})
	baseOpts := []core.LocalizeOption{
		core.WithoutSource(core.SourceRDNS),
		core.WithoutSource(core.SourceGeoDB),
	}

	ctx := context.Background()
	leg := &hintLeg{}
	var hintedErrs, baseErrs []float64
	start := time.Now()
	for _, h := range hosts[:hold] {
		hres, err := hinted.LocalizeContext(ctx, h.Name)
		if err != nil {
			return nil, fmt.Errorf("hints: hinted %s: %w", h.Name, err)
		}
		hintedErrs = append(hintedErrs, hres.Point.DistanceKm(h.Loc))
		if hres.Provenance != nil {
			leg.dropped += len(hres.Provenance.DroppedHints)
		}
		bres, err := base.LocalizeContext(ctx, h.Name, baseOpts...)
		if err != nil {
			return nil, fmt.Errorf("hints: baseline %s: %w", h.Name, err)
		}
		baseErrs = append(baseErrs, bres.Point.DistanceKm(h.Loc))
	}
	leg.elapsed = time.Since(start)
	leg.hintedMedianKm = stats.Percentile(hintedErrs, 50)
	leg.baseMedianKm = stats.Percentile(baseErrs, 50)
	return leg, nil
}
