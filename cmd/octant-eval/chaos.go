package main

import (
	"fmt"
	"time"

	"octant/internal/cluster"
)

// runChaos is the -chaos mode: a fault-injection soak over a real
// local fleet. It kills and revives survey landmarks (simulator
// node-down) and serving nodes (listener kill) under continuous load
// and exits non-zero unless every invariant held: zero client-visible
// errors, degraded-mode results actually served while landmarks were
// down, median accuracy within 3×healthy + 300 km, and the whole fleet
// ready again at the end.
func runChaos(seed uint64, nodes int, duration time.Duration, landmarkFrac float64) error {
	report, err := cluster.RunChaos(cluster.ChaosConfig{
		Seed:         seed,
		Nodes:        nodes,
		Duration:     duration,
		LandmarkFrac: landmarkFrac,
		Log: func(format string, args ...any) {
			fmt.Printf("chaos: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("chaos: PASS — %d requests, 0 errors, %d degraded, %d landmarks downed, %d node kills\n",
		report.Requests, report.Degraded, report.LandmarksDowned, report.NodeKills)
	fmt.Printf("chaos: accuracy healthy %.0f km vs faulted %.0f km (median); failovers %d, breaker opens %d, trials %d\n",
		report.HealthyMedianKm, report.ChaosMedianKm,
		report.Cluster.Router.Failovers, report.Cluster.Router.BreakerOpens, report.Cluster.Router.BreakerTrials)
	return nil
}
