// Command octant-sim inspects the simulated Internet: topology summary,
// sample routes and traceroutes, WHOIS records, and the latency/distance
// statistics the framework's calibration depends on.
package main

import (
	"flag"
	"fmt"
	"log"

	"octant/internal/geo"
	"octant/internal/netsim"
	"octant/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("octant-sim: ")
	var (
		seed = flag.Uint64("seed", 1, "world seed")
		src  = flag.String("src", "planetlab2.cs.cornell.edu", "traceroute source host")
		dst  = flag.String("dst", "planetlab1.cs.berkeley.edu", "traceroute destination host")
	)
	flag.Parse()

	w := netsim.NewWorld(netsim.Config{Seed: *seed})

	var hosts, access, backbone int
	for _, n := range w.Nodes {
		switch n.Kind {
		case netsim.KindHost:
			hosts++
		case netsim.KindAccess:
			access++
		case netsim.KindBackbone:
			backbone++
		}
	}
	fmt.Printf("world seed=%d: %d nodes (%d hosts, %d access, %d backbone), %d links\n",
		*seed, len(w.Nodes), hosts, access, backbone, len(w.Links))

	// Latency/distance statistics over host pairs.
	var ratios, rtts []float64
	hs := w.HostNodes()
	for i := range hs {
		for j := i + 1; j < len(hs); j++ {
			rtt := w.MinPing(hs[i].ID, hs[j].ID, 10)
			d := hs[i].Loc.DistanceKm(hs[j].Loc)
			rtts = append(rtts, rtt)
			if d > 100 {
				ratios = append(ratios, rtt/geo.DistanceToMinLatencyMs(d))
			}
		}
	}
	fmt.Printf("inter-host RTT: median %.1f ms, p90 %.1f ms, max %.1f ms\n",
		stats.Median(rtts), stats.Percentile(rtts, 90), stats.Max(rtts))
	fmt.Printf("route inflation (RTT / geodesic fiber RTT): median %.2f, p90 %.2f\n",
		stats.Median(ratios), stats.Percentile(ratios, 90))

	a, ok := w.HostByName(*src)
	if !ok {
		log.Fatalf("unknown src %q", *src)
	}
	b, ok := w.HostByName(*dst)
	if !ok {
		log.Fatalf("unknown dst %q", *dst)
	}
	fmt.Printf("\ntraceroute %s → %s:\n", *src, *dst)
	for i, h := range w.Traceroute(a.ID, b.ID, 3) {
		fmt.Printf("%3d  %-44s %-16s %7.2f ms\n", i+1, h.Name, h.IP, h.RTTMs)
	}

	fmt.Printf("\nWHOIS records (first 10 hosts):\n")
	for _, n := range hs[:10] {
		rec, _ := w.Whois(n.IP)
		status := "ok"
		if !rec.Correct {
			status = "WRONG (registrar HQ)"
		}
		fmt.Printf("%-40s %-16s zip=%-8s %s\n", n.Name, rec.City, rec.Zip, status)
	}
}
