// Command octant localizes a host in the simulated Internet with the full
// Octant pipeline and prints the point estimate, the estimated location
// region, and optionally its GeoJSON.
//
// Usage:
//
//	octant -target planetlab2.cs.cornell.edu [-seed 1] [-probes 10]
//	       [-geojson out.json] [-disable heights,negative,piecewise,whois,oceans]
//
// Multiple comma-separated targets run through the concurrent batch
// engine:
//
//	octant -targets host1,host2,host3 -parallel 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/netsim"
	"octant/internal/probe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("octant: ")
	var (
		target   = flag.String("target", "planetlab2.cs.cornell.edu", "host name of the target (one of the simulated sites)")
		targets  = flag.String("targets", "", "comma-separated target list; overrides -target and runs the batch engine")
		parallel = flag.Int("parallel", 4, "concurrent localizations for multi-target runs")
		seed     = flag.Uint64("seed", 1, "world seed")
		probes   = flag.Int("probes", 10, "ping probes per measurement")
		geoOut   = flag.String("geojson", "", "write the estimated region as GeoJSON to this file")
		disable  = flag.String("disable", "", "comma-separated mechanisms to disable: heights,negative,piecewise,whois,oceans")
		list     = flag.Bool("list", false, "list available target hosts and exit")
	)
	flag.Parse()

	world := netsim.NewWorld(netsim.Config{Seed: *seed})
	prober := probe.NewSimProber(world)
	hosts := world.HostNodes()

	if *list {
		for _, h := range hosts {
			fmt.Printf("%-40s %-16s %s\n", h.Name, h.Inst, h.Loc)
		}
		return
	}

	cfg := core.Config{Probes: *probes}
	for _, d := range strings.Split(*disable, ",") {
		switch strings.TrimSpace(d) {
		case "":
		case "heights":
			cfg.DisableHeights = true
		case "negative":
			cfg.DisableNegative = true
		case "piecewise":
			cfg.DisablePiecewise = true
		case "whois":
			cfg.DisableWhois = true
		case "oceans":
			cfg.DisableOceans = true
		default:
			log.Fatalf("unknown mechanism %q (want heights|negative|piecewise|whois|oceans)", d)
		}
	}

	// Multi-target mode: hold every requested target out of the survey and
	// fan the batch across the worker-pool engine.
	if *targets != "" {
		runBatch(world, prober, cfg, strings.Split(*targets, ","), *probes, *parallel)
		return
	}

	var truth *netsim.Node
	var landmarks []core.Landmark
	for _, h := range hosts {
		if h.Name == *target {
			truth = h
			continue
		}
		landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	if truth == nil {
		log.Fatalf("unknown target %q (use -list to see hosts)", *target)
	}

	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{Probes: *probes, UseHeights: true})
	if err != nil {
		log.Fatal(err)
	}
	loc := core.NewLocalizer(prober, survey, cfg)
	res, err := loc.Localize(*target)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target          %s\n", *target)
	fmt.Printf("landmarks       %d (κ=%.2f)\n", survey.N(), survey.Kappa)
	fmt.Printf("point estimate  %s\n", res.Point)
	fmt.Printf("true location   %s\n", truth.Loc)
	fmt.Printf("error           %.1f miles (%.1f km)\n",
		res.Point.DistanceMiles(truth.Loc), res.Point.DistanceKm(truth.Loc))
	fmt.Printf("region area     %.0f km² (%.0f mi²), %d ring(s)\n",
		res.AreaKm2, res.AreaKm2*0.386102, len(res.Region.Rings))
	fmt.Printf("contains truth  %v\n", res.ContainsTruth(truth.Loc))
	fmt.Printf("target height   %.2f ms (true access delay %.2f ms)\n",
		res.TargetHeightMs, world.AccessHeight(truth.ID))
	fmt.Printf("constraints     %d\n", len(res.Constraints))

	if *geoOut != "" {
		props := map[string]any{
			"target":  *target,
			"area_mi": res.AreaKm2 * 0.386102,
		}
		js, err := res.Region.ToGeoJSON(res.Projection, props)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*geoOut, js, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("geojson         %s (%d bytes)\n", *geoOut, len(js))
	}
}

// runBatch localizes several targets concurrently: the targets are held
// out of the survey, the remaining hosts become landmarks, and the batch
// engine fans the work across -parallel workers. One line per target, in
// submission order, with per-target errors inline.
func runBatch(world *netsim.World, prober probe.Prober, cfg core.Config, targetList []string, probes, parallel int) {
	want := make(map[string]bool, len(targetList))
	targets := targetList[:0]
	for _, t := range targetList {
		t = strings.TrimSpace(t)
		if t == "" || want[t] {
			continue
		}
		want[t] = true
		targets = append(targets, t)
	}
	if len(targets) == 0 {
		log.Fatal("no targets")
	}
	truthByName := make(map[string]*netsim.Node, len(targets))
	var landmarks []core.Landmark
	for _, h := range world.HostNodes() {
		if want[h.Name] {
			truthByName[h.Name] = h
			continue
		}
		landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	for _, t := range targets {
		if truthByName[t] == nil {
			log.Fatalf("unknown target %q (use -list to see hosts)", t)
		}
	}
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{Probes: probes, UseHeights: true})
	if err != nil {
		log.Fatal(err)
	}
	eng := batch.New(core.NewLocalizer(prober, survey, cfg), batch.Options{Workers: parallel})
	results, errs := eng.Collect(context.Background(), targets)
	for i, t := range targets {
		if errs[i] != nil {
			fmt.Printf("%-40s ERROR %v\n", t, errs[i])
			continue
		}
		res, truth := results[i], truthByName[t]
		fmt.Printf("%-40s %s  err %6.1f mi  area %8.0f km²  contains %v\n",
			t, res.Point, res.Point.DistanceMiles(truth.Loc), res.AreaKm2, res.ContainsTruth(truth.Loc))
	}
	s := eng.Stats()
	fmt.Printf("\n%d targets, %d workers, %d landmarks, p50 %.0f ms, p99 %.0f ms\n",
		len(targets), s.Workers, survey.N(), s.P50Ms, s.P99Ms)
}
