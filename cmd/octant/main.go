// Command octant localizes a host in the simulated Internet with the full
// Octant pipeline and prints the point estimate, the estimated location
// region, and optionally its GeoJSON.
//
// Usage:
//
//	octant -target planetlab2.cs.cornell.edu [-seed 1] [-probes 10]
//	       [-geojson out.json] [-disable heights,negative,piecewise,whois,oceans]
//	       [-timeout 30s] [-no-routers] [-no-geo] [-explain]
//
// -timeout bounds the whole localization through the context-first v2
// API (the measurement aborts at its next probe when the deadline
// passes); -no-routers and -no-geo disable the corresponding evidence
// sources per request; -explain prints the per-source provenance table.
//
// Multiple comma-separated targets run through the concurrent batch
// engine:
//
//	octant -targets host1,host2,host3 -parallel 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/netsim"
	"octant/internal/probe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("octant: ")
	var (
		target    = flag.String("target", "planetlab2.cs.cornell.edu", "host name of the target (one of the simulated sites)")
		targets   = flag.String("targets", "", "comma-separated target list; overrides -target and runs the batch engine")
		parallel  = flag.Int("parallel", 4, "concurrent localizations for multi-target runs")
		seed      = flag.Uint64("seed", 1, "world seed")
		probes    = flag.Int("probes", 10, "ping probes per measurement")
		geoOut    = flag.String("geojson", "", "write the estimated region as GeoJSON to this file")
		disable   = flag.String("disable", "", "comma-separated mechanisms to disable: heights,negative,piecewise,whois,oceans")
		timeout   = flag.Duration("timeout", 0, "overall localization deadline per target, enforced through the request context (0 = none)")
		noRouters = flag.Bool("no-routers", false, "disable the §2.3 router evidence source for this run")
		noGeo     = flag.Bool("no-geo", false, "disable the §2.5 ocean/land mask evidence source for this run")
		explain   = flag.Bool("explain", false, "print the per-source evidence provenance table")
		list      = flag.Bool("list", false, "list available target hosts and exit")
	)
	flag.Parse()

	world := netsim.NewWorld(netsim.Config{Seed: *seed})
	prober := probe.NewSimProber(world)
	hosts := world.HostNodes()

	if *list {
		for _, h := range hosts {
			fmt.Printf("%-40s %-16s %s\n", h.Name, h.Inst, h.Loc)
		}
		return
	}

	cfg := core.Config{Probes: *probes}
	for _, d := range strings.Split(*disable, ",") {
		switch strings.TrimSpace(d) {
		case "":
		case "heights":
			cfg.DisableHeights = true
		case "negative":
			cfg.DisableNegative = true
		case "piecewise":
			cfg.DisablePiecewise = true
		case "whois":
			cfg.DisableWhois = true
		case "oceans":
			cfg.DisableOceans = true
		default:
			log.Fatalf("unknown mechanism %q (want heights|negative|piecewise|whois|oceans)", d)
		}
	}

	// Per-request options: source toggles and provenance ride the v2
	// options API; the timeout rides the context.
	var opts []core.LocalizeOption
	if *noRouters {
		opts = append(opts, core.WithoutSource(core.SourceRouter))
	}
	if *noGeo {
		opts = append(opts, core.WithoutSource(core.SourceGeography))
	}
	if *explain {
		opts = append(opts, core.WithExplain())
	}
	ctx := context.Background()

	// Multi-target mode: hold every requested target out of the survey and
	// fan the batch across the worker-pool engine.
	if *targets != "" {
		runBatch(ctx, world, prober, cfg, strings.Split(*targets, ","), *probes, *parallel, *timeout, opts)
		return
	}

	var truth *netsim.Node
	var landmarks []core.Landmark
	for _, h := range hosts {
		if h.Name == *target {
			truth = h
			continue
		}
		landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	if truth == nil {
		log.Fatalf("unknown target %q (use -list to see hosts)", *target)
	}

	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{Probes: *probes, UseHeights: true})
	if err != nil {
		log.Fatal(err)
	}
	loc := core.NewLocalizer(prober, survey, cfg)
	if *timeout > 0 {
		// The deadline governs the whole request through the ctx-first
		// API — measurement, routers, and solve — rather than relying on
		// any prober-level socket deadline.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := loc.LocalizeContext(ctx, *target, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target          %s\n", *target)
	fmt.Printf("landmarks       %d (κ=%.2f)\n", survey.N(), survey.Kappa)
	fmt.Printf("point estimate  %s\n", res.Point)
	fmt.Printf("true location   %s\n", truth.Loc)
	fmt.Printf("error           %.1f miles (%.1f km)\n",
		res.Point.DistanceMiles(truth.Loc), res.Point.DistanceKm(truth.Loc))
	fmt.Printf("region area     %.0f km² (%.0f mi²), %d ring(s)\n",
		res.AreaKm2, res.AreaKm2*0.386102, len(res.Region.Rings))
	fmt.Printf("contains truth  %v\n", res.ContainsTruth(truth.Loc))
	fmt.Printf("target height   %.2f ms (true access delay %.2f ms)\n",
		res.TargetHeightMs, world.AccessHeight(truth.ID))
	fmt.Printf("constraints     %d\n", len(res.Constraints))
	if res.Provenance != nil {
		fmt.Printf("\nevidence provenance (%d constraints, %.2f ms measuring, %.2f ms solving):\n",
			res.Provenance.TotalConstraints, res.Provenance.MeasureMs, res.Provenance.SolveMs)
		fmt.Printf("  %-12s %11s %8s %14s %9s %10s  %s\n", "source", "constraints", "weight", "area km²", "ms", "measure ms", "note")
		for _, rep := range res.Provenance.Sources {
			fmt.Printf("  %-12s %11d %8.3f %14.0f %9.2f %10.2f  %s\n",
				rep.Source, rep.Constraints, rep.Weight, rep.AreaKm2, rep.ElapsedMs, rep.MeasureMs, rep.Skipped)
		}
		for _, dh := range res.Provenance.DroppedHints {
			fmt.Printf("  dropped %-12s %s\n", dh.Hint, dh.Reason)
		}
		if d := res.Provenance.Disagreement; d != nil {
			fmt.Printf("  disagreement    %.0f km (hint↔geodb %.0f, hint↔latency %.0f, geodb↔latency %.0f)",
				d.DisagreementKm, d.HintGeoDBKm, d.HintLatencyKm, d.GeoDBLatencyKm)
			if d.Conflict {
				fmt.Printf("  CONFLICT")
			}
			fmt.Println()
		}
	}

	if *geoOut != "" {
		props := map[string]any{
			"target":  *target,
			"area_mi": res.AreaKm2 * 0.386102,
		}
		js, err := res.Region.ToGeoJSON(res.Projection, props)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*geoOut, js, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("geojson         %s (%d bytes)\n", *geoOut, len(js))
	}
}

// runBatch localizes several targets concurrently: the targets are held
// out of the survey, the remaining hosts become landmarks, and the batch
// engine fans the work across -parallel workers. One line per target, in
// submission order, with per-target errors inline. opts apply to every
// target and timeout bounds each one through the engine's per-target
// context.
func runBatch(ctx context.Context, world *netsim.World, prober probe.Prober, cfg core.Config, targetList []string, probes, parallel int, timeout time.Duration, opts []core.LocalizeOption) {
	want := make(map[string]bool, len(targetList))
	targets := targetList[:0]
	for _, t := range targetList {
		t = strings.TrimSpace(t)
		if t == "" || want[t] {
			continue
		}
		want[t] = true
		targets = append(targets, t)
	}
	if len(targets) == 0 {
		log.Fatal("no targets")
	}
	truthByName := make(map[string]*netsim.Node, len(targets))
	var landmarks []core.Landmark
	for _, h := range world.HostNodes() {
		if want[h.Name] {
			truthByName[h.Name] = h
			continue
		}
		landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	for _, t := range targets {
		if truthByName[t] == nil {
			log.Fatalf("unknown target %q (use -list to see hosts)", t)
		}
	}
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{Probes: probes, UseHeights: true})
	if err != nil {
		log.Fatal(err)
	}
	eng := batch.New(core.NewLocalizer(prober, survey, cfg),
		batch.Options{Workers: parallel, TargetTimeout: timeout})
	results, errs := eng.Collect(ctx, targets, opts...)
	for i, t := range targets {
		if errs[i] != nil {
			fmt.Printf("%-40s ERROR %v\n", t, errs[i])
			continue
		}
		res, truth := results[i], truthByName[t]
		fmt.Printf("%-40s %s  err %6.1f mi  area %8.0f km²  contains %v\n",
			t, res.Point, res.Point.DistanceMiles(truth.Loc), res.AreaKm2, res.ContainsTruth(truth.Loc))
		if res.Provenance != nil {
			for _, rep := range res.Provenance.Sources {
				fmt.Printf("    %-12s %3d constraints  w %7.3f  area %12.0f km²  %s\n",
					rep.Source, rep.Constraints, rep.Weight, rep.AreaKm2, rep.Skipped)
			}
			for _, dh := range res.Provenance.DroppedHints {
				fmt.Printf("    dropped %-12s %s\n", dh.Hint, dh.Reason)
			}
			if d := res.Provenance.Disagreement; d != nil && d.Conflict {
				fmt.Printf("    disagreement %.0f km CONFLICT\n", d.DisagreementKm)
			}
		}
	}
	s := eng.Stats()
	fmt.Printf("\n%d targets, %d workers, %d landmarks, p50 %.0f ms, p99 %.0f ms\n",
		len(targets), s.Workers, survey.N(), s.P50Ms, s.P99Ms)
}
